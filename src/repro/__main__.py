"""Command-line entry point: ``python -m repro <command>``.

Scenario subcommands (the declarative path — :mod:`repro.scenarios`):

* ``run <id|file.json>`` — run a registered scenario or a scenario JSON
  file (any kind: steady sweeps, the case study, transient RC step
  responses, nonlinear k(T) fixed points); with ``--store DIR`` finished
  runs become content-addressed artifacts and re-running an unchanged
  spec is a store hit, not a solve; ``--progress json`` streams one JSON
  event per completed plan node on stderr;
* ``list`` — show the registered scenarios (with their kind, so mixed
  registries stay legible);
* ``batch <dir>`` — compile every scenario file in a directory into one
  merged execution plan (shared calibration/reference/sweep points are
  solved once; sweep points fan out over ``--jobs`` workers), skipping
  runs already in the store; ``--resume`` continues an interrupted batch
  from its stored points;
* ``fleet <id|file.json> [...]`` — run scenarios across ``--workers N``
  cooperating OS processes sharing one ``--store``: every node is solved
  exactly once under a lease claim, peers read each other's results back
  from the point space, and a killed worker's leases expire and its
  nodes reschedule on the survivors (see
  :mod:`repro.scenarios.fleet`);
* ``migrate <dir>`` — move a legacy flat-layout run store into the
  sharded ``<space>/<xx>/<key>.json`` layout (reads understand both, so
  migrating is optional).

Legacy aliases keep working: ``python -m repro fig4 …`` (also ``fig5``,
``fig6``, ``fig7``, ``table1``, ``case_study``, ``all``) runs the paper
experiments directly, and ``python -m repro bench`` delegates to the
benchmark-regression harness.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from .analysis import export_json, format_table
from .errors import DrainError
from .experiments import REGISTRY, case_study, render_markdown, run_all
from .experiments.harness import ExperimentResult
from .perf import RetryPolicy, get_executor
from .scenarios import (
    SCENARIOS,
    RunStore,
    ScenarioSpec,
    run_batch,
    run_fleet,
    run_scenario,
)
from .scenarios.drain import DrainGuard, drain_exit_code
from .scenarios.lease import DEFAULT_TTL_S
from .scenarios.store import MANIFEST_NAME

#: legacy experiment names that accept --jobs (they run parameter sweeps)
_SWEEP_EXPERIMENTS = ("all", "fig4", "fig5", "fig6", "fig7", "table1")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_run_flags(parser: argparse.ArgumentParser, *, legacy: bool) -> None:
    """The flag set shared by the scenario and legacy subcommands.

    Legacy commands keep their historical ``--fem-resolution`` default
    (``medium``); scenario commands default to None so the spec's own
    reference wins unless the user overrides it.
    """
    parser.add_argument(
        "--fast", action="store_true", help="reduced sweeps (CI-speed)"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes per sweep (default 1 = serial; results are "
        "identical either way)",
    )
    parser.add_argument(
        "--fem-resolution",
        default="medium" if legacy else None,
        choices=["coarse", "medium", "fine"],
        help="mesh preset for the FEM reference"
        + (" (default: medium)" if legacy else " (default: the spec's own)"),
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the recalibrated Model A variant",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write JSON payloads here"
        + (" (and EXPERIMENTS.md for 'all')" if legacy else " (payload + spec)"),
    )
    if not legacy:
        parser.add_argument(
            "--no-matrix-groups",
            action="store_true",
            help="disable matrix-batched dispatch (nodes sharing a system "
            "matrix are otherwise solved as one group: factor once, one "
            "RHS per point; results are identical either way)",
        )
        parser.add_argument(
            "--no-stacked-batches",
            action="store_true",
            help="disable the cross-matrix stacked solve tier (ungrouped "
            "nodes sharing a system structure are otherwise solved as one "
            "batched dense call; results are identical either way)",
        )
        parser.add_argument(
            "--store",
            type=Path,
            default=None,
            metavar="DIR",
            help="content-addressed run store: artifacts land here and "
            "re-running an unchanged scenario is a store hit, not a solve",
        )
        parser.add_argument(
            "--resume",
            action="store_true",
            help="reuse point-level artifacts (points/<key>.json) from an "
            "interrupted earlier run instead of re-solving them (needs a "
            "store)",
        )
        parser.add_argument(
            "--progress",
            choices=["bar", "json"],
            default="bar",
            help="execution-plan progress on stderr: 'bar' (default) is the "
            "live one-line counter; 'json' emits one JSON event per "
            "completed plan node (kind, key, cache/store provenance, "
            "elapsed seconds)",
        )
        parser.add_argument(
            "--max-retries",
            type=int,
            default=2,
            metavar="N",
            help="how many times a transiently-failed plan node is "
            "re-dispatched before being quarantined (default 2; 0 "
            "quarantines on first failure)",
        )
        parser.add_argument(
            "--node-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-node wall-clock budget; a node exceeding it counts "
            "as a transient failure and is retried (scaled by member "
            "count for matrix groups; default: unbounded)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Run declarative scenarios ('run', 'list', 'batch'), regenerate "
            "the DATE 2011 TTSV paper's tables and figures (legacy "
            "fig4..case_study/all aliases), or run the benchmark-regression "
            "harness ('bench')."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="command")

    run_p = sub.add_parser(
        "run",
        help="run a registered scenario id or a scenario JSON file",
        description="Run one scenario through the registry/run-store path.",
    )
    run_p.add_argument(
        "target", help="a registered scenario id (see 'list') or a JSON spec file"
    )
    _add_run_flags(run_p, legacy=False)

    sub.add_parser(
        "list",
        help="list the registered scenarios",
        description="Show every scenario in the registry.",
    )

    batch_p = sub.add_parser(
        "batch",
        help="run every scenario JSON file in a directory, store-deduplicated",
        description=(
            "Run every *.json scenario in a directory; runs already present "
            "in the store are skipped (served from their stored artifact)."
        ),
    )
    batch_p.add_argument(
        "directory", type=Path, help="directory containing scenario *.json files"
    )
    _add_run_flags(batch_p, legacy=False)

    fleet_p = sub.add_parser(
        "fleet",
        help="run scenarios across N cooperating worker processes",
        description=(
            "Run scenarios across --workers cooperating OS processes sharing "
            "one --store.  Workers claim plan nodes through lease files, "
            "read each other's results back from the point space, and steal "
            "a dead worker's expired claims — every node is solved exactly "
            "once, byte-identically to a single-process run."
        ),
    )
    fleet_p.add_argument(
        "targets",
        nargs="+",
        metavar="target",
        help="registered scenario ids (see 'list') and/or JSON spec files",
    )
    fleet_p.add_argument(
        "--workers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="cooperating worker processes (default 4)",
    )
    fleet_p.add_argument(
        "--store",
        type=Path,
        required=True,
        metavar="DIR",
        help="the shared run store (the fleet's coordination plane); more "
        "fleets/processes may point at the same directory concurrently",
    )
    fleet_p.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_TTL_S,
        metavar="SECONDS",
        help="claim lifetime before an unrenewed lease is considered dead "
        f"and stolen (default {DEFAULT_TTL_S:g}s)",
    )
    fleet_p.add_argument(
        "--fast", action="store_true", help="reduced sweeps (CI-speed)"
    )
    fleet_p.add_argument(
        "--fem-resolution",
        default=None,
        choices=["coarse", "medium", "fine"],
        help="mesh preset for the FEM reference (default: the spec's own)",
    )
    fleet_p.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the recalibrated Model A variant",
    )
    fleet_p.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="per-worker transient-failure retries before quarantine "
        "(default 2)",
    )
    fleet_p.add_argument(
        "--node-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-node wall-clock budget (default: unbounded)",
    )
    fleet_p.add_argument(
        "--supervise",
        action="store_true",
        help="self-healing mode: respawn crashed or heartbeat-silent "
        "workers (with crash-loop backoff; respawned workers resume from "
        "the store); graceful drains are never respawned",
    )
    fleet_p.add_argument(
        "--max-respawns",
        type=int,
        default=3,
        metavar="N",
        help="respawn budget per rank under --supervise (default 3)",
    )
    fleet_p.add_argument(
        "--stall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="under --supervise, kill-and-respawn a worker whose heartbeat "
        "is older than this (default: stall detection off)",
    )
    fleet_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="under --supervise, terminate the whole run after this long "
        "(default: unbounded)",
    )

    fsck_p = sub.add_parser(
        "fsck",
        help="scrub a run store for damage (corrupt/orphaned/mis-filed data)",
        description=(
            "Walk every space of a run store and verify it end-to-end: "
            "envelope checksums, manifest cross-references, shard placement, "
            "lease health.  Exits non-zero when damage is found (notes such "
            "as expired claims or tmp litter are reported but are not "
            "damage); --repair heals everything in place."
        ),
    )
    fsck_p.add_argument(
        "directory", type=Path, help="the run-store directory to scrub"
    )
    fsck_p.add_argument(
        "--repair",
        action="store_true",
        help="heal the damage: delete corrupt/unreachable artifacts (they "
        "re-solve on resume), fix manifest entries, re-shard mis-filed "
        "artifacts, clear expired claims and litter",
    )

    migrate_p = sub.add_parser(
        "migrate",
        help="move a legacy flat run store into the sharded layout",
        description=(
            "Move every artifact of a flat-layout run store into the sharded "
            "<space>/<xx>/<key>.json layout.  Idempotent; reads understand "
            "both layouts, so this only matters for very large stores."
        ),
    )
    migrate_p.add_argument(
        "directory", type=Path, help="the run-store directory to migrate"
    )

    for exp_id in (*REGISTRY, "all"):
        legacy_p = sub.add_parser(
            exp_id, help=f"(legacy alias) regenerate {exp_id}"
        )
        _add_run_flags(legacy_p, legacy=True)
        legacy_p.set_defaults(experiment=exp_id)
    return parser


def _print_result(result) -> None:
    if isinstance(result, ExperimentResult):
        print(result.title)
        print()
        print(result.table_text())
        print()
        print(format_table(result.error_rows()))
        print()
        print(result.plot_text())
        if "table_rows" in result.metadata:
            print()
            print(format_table(result.metadata["table_rows"]))
    else:  # the case study (live or store-loaded) has its own shape
        print(getattr(result, "title", None) or case_study.TITLE)
        print()
        print(format_table(result.rows(), float_format="{:.2f}"))


# ---------------------------------------------------------------------------
# scenario subcommands
# ---------------------------------------------------------------------------
class _JsonProgress:
    """``--progress json``: one JSON event line per completed plan node.

    Each line is a self-contained object — ``{"event": "node", "kind":
    ..., "key": ..., "source": "solved|cache|store", "done": n, "total":
    m, "elapsed_s": ...}`` — written to stderr the moment the node lands,
    so a dashboard (or the future service front-end) can tail the stream
    instead of scraping the human progress line.
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def __call__(self, event: dict) -> None:
        self._counts[event["source"]] = self._counts.get(event["source"], 0) + 1
        payload = {
            "event": "node",
            "kind": event["kind"],
            "key": event["key"],
            "source": event["source"],
            "done": event["done"],
            "total": event["total"],
            "elapsed_s": event.get("elapsed_s"),
        }
        if "dispatch" in event:
            # freshly solved nodes carry their dispatch shape:
            # point | group (multi-RHS) | stacked (cross-matrix batch)
            payload["dispatch"] = event["dispatch"]
        print(
            json.dumps(payload, sort_keys=False),
            file=sys.stderr,
            flush=True,
        )

    def close(self) -> None:
        if self._counts:
            print(
                json.dumps({"event": "done", "counts": self._counts}),
                file=sys.stderr,
                flush=True,
            )


def _make_progress(args: argparse.Namespace):
    return _JsonProgress() if args.progress == "json" else _PlanProgress()


def _retry_policy(args: argparse.Namespace) -> RetryPolicy:
    """The CLI's fault-tolerance policy (attempts = first try + retries)."""
    if args.max_retries < 0:
        raise SystemExit("error: --max-retries must be >= 0")
    return RetryPolicy(
        max_attempts=args.max_retries + 1, node_timeout_s=args.node_timeout
    )


def _drain_notice(exc: DrainError, store: Path | None) -> None:
    """The resume hint printed when a run/batch drains on a signal."""
    name = signal.Signals(exc.signum).name
    print(
        f"\ndrained on {name}: completed plan nodes are committed, "
        "in-flight leases were released",
        file=sys.stderr,
    )
    if store is not None:
        print(
            f"resume with: the same command plus --store {store} --resume",
            file=sys.stderr,
        )
    else:
        print(
            "no --store was given, so there are no stored points to resume "
            "from",
            file=sys.stderr,
        )


def _print_failures(failures) -> None:
    """The nonzero-exit quarantine table (stderr)."""
    print(
        f"\n{len(failures)} plan node(s) exhausted their retry budget and "
        "were quarantined:",
        file=sys.stderr,
    )
    rows: list[list[object]] = [["node", "kind", "error", "attempts", "message"]]
    for f in failures:
        key = f.key if len(f.key) <= 20 else f.key[:17] + "..."
        message = f.message if len(f.message) <= 48 else f.message[:45] + "..."
        rows.append([key, f.kind, f.error_class, f.attempts, message])
    print(format_table(rows), file=sys.stderr)
    print(
        "re-run with --store/--resume to re-attempt only the quarantined "
        "points; completed points are kept",
        file=sys.stderr,
    )


class _PlanProgress:
    """Live ``\\r``-updating execution-plan progress on stderr."""

    def __init__(self) -> None:
        self._printed = False
        self._counts = {"solved": 0, "cache": 0, "store": 0, "failed": 0}

    def __call__(self, event: dict) -> None:
        self._counts[event["source"]] = self._counts.get(event["source"], 0) + 1
        failed = (
            f", failed {self._counts['failed']}"
            if self._counts.get("failed")
            else ""
        )
        print(
            f"\r[plan] {event['done']}/{event['total']} nodes "
            f"(solved {self._counts['solved']}, cache {self._counts['cache']}, "
            f"resumed {self._counts['store']}{failed})",
            end="",
            file=sys.stderr,
            flush=True,
        )
        self._printed = True

    def close(self) -> None:
        if self._printed:
            print(file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.target in SCENARIOS:
        spec = SCENARIOS.get(args.target)
    else:
        path = Path(args.target)
        if not path.exists():
            print(
                f"error: {args.target!r} is neither a registered scenario id "
                f"nor an existing file; see 'python -m repro list'",
                file=sys.stderr,
            )
            return 2
        spec = ScenarioSpec.load(path)
    store = RunStore(args.store) if args.store else None
    if args.resume and store is None:
        print("note: --resume needs a --store; ignored", file=sys.stderr)
    progress = _make_progress(args)
    guard = DrainGuard()
    try:
        with guard.installed():
            run = run_scenario(
                spec,
                executor=get_executor(args.jobs),
                store=store,
                resume=args.resume,
                fast=args.fast,
                fem_resolution=args.fem_resolution,
                calibrate=False if args.no_calibrate else None,
                progress=progress,
                group_matrices=not args.no_matrix_groups,
                stack_batches=not args.no_stacked_batches,
                retry=_retry_policy(args),
                drain=guard,
            )
    except DrainError as exc:
        progress.close()
        _drain_notice(exc, args.store)
        return drain_exit_code(exc.signum)
    progress.close()
    if run.failed:
        print(f"[{run.spec.scenario_id}] FAILED (key {run.key})")
        _print_failures(run.failures)
        return 3
    source = "served from run store" if run.from_store else "solved"
    print(f"[{run.spec.scenario_id}] {source} (key {run.key})")
    print()
    _print_result(run.result)
    if args.output_dir:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        export_json(
            args.output_dir / f"{run.spec.scenario_id}.json",
            run.result.to_payload(),
        )
        run.spec.dump(args.output_dir / f"{run.spec.scenario_id}.spec.json")
        print(f"\npayload and spec written to {args.output_dir}")
    return 0


def _cmd_list() -> int:
    rows: list[list[object]] = [["id", "kind", "axis", "points", "physics", "title"]]
    for spec in SCENARIOS.specs():
        if spec.kind == "transient":
            physics = (
                f"t_end={spec.transient.t_end_s:g}s x{spec.transient.n_steps}"
            )
        elif spec.kind == "nonlinear":
            physics = f"slope x{spec.nonlinear.slope_scale:g}"
        elif spec.kind == "sweep":
            physics = f"ref {spec.reference}"
        else:
            physics = "-"
        # physics kinds run one base-geometry point when they have no axis;
        # only the opaque case study has no point count at all
        points = (
            len(spec.axis.values)
            if spec.axis
            else (1 if spec.kind in ("transient", "nonlinear") else "-")
        )
        rows.append(
            [
                spec.scenario_id,
                spec.kind,
                spec.axis.parameter if spec.axis else "-",
                points,
                physics,
                spec.title,
            ]
        )
    print(format_table(rows))
    print(
        "\nrun one with: python -m repro run <id>   "
        "(or point 'run'/'batch' at scenario JSON files)"
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    directory: Path = args.directory
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    files = [
        f for f in sorted(directory.glob("*.json")) if f.name != MANIFEST_NAME
    ]
    if not files:
        print(f"error: no scenario *.json files in {directory}", file=sys.stderr)
        return 2
    store = RunStore(args.store if args.store else directory / "runs")
    specs = [ScenarioSpec.load(path) for path in files]
    progress = _make_progress(args)
    guard = DrainGuard()
    try:
        with guard.installed():
            batch = run_batch(
                specs,
                executor=get_executor(args.jobs),
                store=store,
                resume=args.resume,
                fast=args.fast,
                fem_resolution=args.fem_resolution,
                calibrate=False if args.no_calibrate else None,
                progress=progress,
                group_matrices=not args.no_matrix_groups,
                stack_batches=not args.no_stacked_batches,
                retry=_retry_policy(args),
                drain=guard,
            )
    except DrainError as exc:
        progress.close()
        _drain_notice(exc, store.root)
        return drain_exit_code(exc.signum)
    progress.close()
    solved = hits = failed = 0
    for path, run in zip(files, batch.runs):
        if run.failed:
            failed += 1
            tag = "FAILED"
        elif run.from_store:
            hits += 1
            tag = "store hit"
        else:
            solved += 1
            tag = "solved"
        print(f"[{run.spec.scenario_id}] {tag:9s} {path.name} -> {run.key}")
        if args.output_dir and not run.failed:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            export_json(
                args.output_dir / f"{run.spec.scenario_id}.json",
                run.result.to_payload(),
            )
            run.spec.dump(args.output_dir / f"{run.spec.scenario_id}.spec.json")
    stats = batch.stats
    if stats.get("nodes_total"):
        print(
            f"\nplan: {stats['nodes_total']} nodes "
            f"({stats.get('nodes_deduped', 0)} deduplicated across scenarios); "
            f"{stats.get('solved', 0)} solved, {stats.get('cache', 0)} from "
            f"cache, {stats.get('store', 0)} resumed from point store"
        )
    print(
        f"\n{len(files)} scenario(s): {solved} solved, {hits} served from "
        f"store"
        + (f", {failed} failed" if failed else "")
        + f"; artifacts in {store.root}"
        + (f"; payloads in {args.output_dir}" if args.output_dir else "")
    )
    if batch.failures:
        _print_failures(batch.failures)
        return 3
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    specs: list[ScenarioSpec] = []
    for target in args.targets:
        if target in SCENARIOS:
            specs.append(SCENARIOS.get(target))
            continue
        path = Path(target)
        if not path.exists():
            print(
                f"error: {target!r} is neither a registered scenario id nor "
                f"an existing file; see 'python -m repro list'",
                file=sys.stderr,
            )
            return 2
        specs.append(ScenarioSpec.load(path))
    outcome = run_fleet(
        specs,
        store=args.store,
        workers=args.workers,
        fast=args.fast,
        fem_resolution=args.fem_resolution,
        calibrate=False if args.no_calibrate else None,
        ttl_s=args.lease_ttl,
        retry=_retry_policy(args),
        supervise=args.supervise,
        max_respawns=args.max_respawns,
        stall_timeout_s=args.stall,
        deadline_s=args.deadline,
    )
    by_rank = {report.rank: report for report in outcome.reports}
    for rank, code in enumerate(outcome.exit_codes):
        report = by_rank.get(rank)
        if report is None:
            print(f"[worker {rank}] died (exit {code}); claims rescheduled")
            continue
        solves = report.counters.get("plan_point_solves", 0)
        steals = report.counters.get("lease_steals", 0)
        detail = f"{solves} node(s) solved"
        if steals:
            detail += f", {steals} claim(s) stolen from dead peers"
        if report.drained is not None:
            status = f"drained on signal {report.drained}"
        else:
            status = "ok" if report.ok else (report.error or "quarantined nodes")
        print(f"[worker {rank}] exit {code}: {detail} ({status})")
    for event in outcome.respawns:
        print(
            f"[supervisor] respawned rank {event['rank']} "
            f"(#{event['respawn']}, {event['reason']}, prior exit "
            f"{event['exit_code']}) at t+{event['at_s']:.1f}s"
        )
    if outcome.deadline_exceeded:
        print(
            f"[supervisor] whole-run deadline of {args.deadline:g}s "
            "exceeded; workers terminated",
            file=sys.stderr,
        )
    total = outcome.counters.get("plan_point_solves", 0)
    print(
        f"\nfleet of {args.workers}: {total} node(s) solved exactly once; "
        f"store {'complete' if outcome.complete else 'INCOMPLETE'} at "
        f"{outcome.store_root}"
    )
    if not outcome.complete:
        print(
            "re-run the same command to resume from the stored points",
            file=sys.stderr,
        )
        return 3
    return 0 if outcome.ok else 3


def _cmd_fsck(args: argparse.Namespace) -> int:
    directory: Path = args.directory
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    from .scenarios.fsck import scrub

    report = scrub(directory, repair=args.repair)
    print(report.table())
    return report.exit_code


def _cmd_migrate(args: argparse.Namespace) -> int:
    directory: Path = args.directory
    if not directory.is_dir():
        print(f"error: {directory} is not a directory", file=sys.stderr)
        return 2
    moved = RunStore(directory).migrate()
    total = sum(moved.values())
    detail = ", ".join(f"{space}: {n}" for space, n in moved.items())
    print(f"migrated {total} artifact(s) into shards ({detail})")
    return 0


# ---------------------------------------------------------------------------
# legacy experiment aliases
# ---------------------------------------------------------------------------
def _cmd_legacy(args: argparse.Namespace) -> int:
    kwargs = {"fem_resolution": args.fem_resolution, "fast": args.fast}
    if args.experiment in _SWEEP_EXPERIMENTS:
        kwargs["jobs"] = args.jobs
    elif args.jobs != 1:
        print(
            f"note: {args.experiment} has no parameter sweep; --jobs ignored",
            file=sys.stderr,
        )
    if args.experiment == "all":
        results = run_all(**kwargs, calibrate=not args.no_calibrate)
        for result in results.values():
            print()
            _print_result(result)
        if args.output_dir:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / "EXPERIMENTS.md").write_text(render_markdown(results))
            for exp_id, result in results.items():
                export_json(
                    args.output_dir / f"{exp_id}.json", result.to_payload()
                )
            print(f"\nreports written to {args.output_dir}")
        return 0
    run = REGISTRY[args.experiment]
    if args.experiment in ("fig4", "fig5", "fig6", "fig7", "table1"):
        kwargs["calibrate"] = not args.no_calibrate
    if args.experiment == "case_study":
        kwargs["recalibrate"] = not args.no_calibrate
    result = run(**kwargs)
    _print_result(result)
    if args.output_dir:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        export_json(
            args.output_dir / f"{args.experiment}.json", result.to_payload()
        )
        print(f"\npayload written to {args.output_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # env-armed laggy-filesystem shim (chaos soak / NFS-semantics drills)
    from . import fsshim

    fsshim.activate_from_env()
    if argv[:1] == ["bench"]:
        # the bench harness owns its own flags; delegate before parsing
        from .perf.bench import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "fsck":
        return _cmd_fsck(args)
    if args.command == "migrate":
        return _cmd_migrate(args)
    return _cmd_legacy(args)


if __name__ == "__main__":
    sys.exit(main())
