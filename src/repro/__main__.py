"""Command-line entry point: ``python -m repro <experiment>``.

Runs one (or all) of the paper's experiments and prints the regenerated
tables/figures; optionally writes the markdown report and raw CSV/JSON.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import export_json, format_table
from .experiments import REGISTRY, case_study, render_markdown, run_all, table1_segments
from .experiments.harness import ExperimentResult


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the DATE 2011 TTSV paper's tables and figures, or run "
            "the benchmark-regression harness ('bench')."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[*REGISTRY.keys(), "all", "bench"],
        help=(
            "which paper artefact to regenerate; 'bench' runs the performance "
            "regression harness (see 'python -m repro bench --help')"
        ),
    )
    parser.add_argument(
        "--fast", action="store_true", help="reduced sweeps (CI-speed)"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes per sweep (default 1 = serial; results are "
        "identical either way)",
    )
    parser.add_argument(
        "--fem-resolution",
        default="medium",
        choices=["coarse", "medium", "fine"],
        help="mesh preset for the FEM reference (default: medium)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the recalibrated Model A variant",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="also write JSON payloads (and EXPERIMENTS.md for 'all') here",
    )
    return parser


def _print_result(result) -> None:
    if isinstance(result, ExperimentResult):
        print(result.title)
        print()
        print(result.table_text())
        print()
        print(format_table(result.error_rows()))
        print()
        print(result.plot_text())
        if "table_rows" in result.metadata:
            print()
            print(format_table(result.metadata["table_rows"]))
    else:  # the case study has its own shape
        print(case_study.TITLE)
        print()
        print(format_table(result.rows(), float_format="{:.2f}"))


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["bench"]:
        # the bench harness owns its own flags; delegate before parsing
        from .perf.bench import main as bench_main

        return bench_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "bench":
        # reachable when flags precede the positional; bench flags differ,
        # so require the documented `python -m repro bench [options]` form
        parser.error("place 'bench' first: python -m repro bench [options]")
    kwargs = {"fem_resolution": args.fem_resolution, "fast": args.fast}
    if args.experiment in ("all", "fig4", "fig5", "fig6", "fig7", "table1"):
        kwargs["jobs"] = args.jobs
    elif args.jobs != 1:
        print(
            f"note: {args.experiment} has no parameter sweep; --jobs ignored",
            file=sys.stderr,
        )
    if args.experiment == "all":
        results = run_all(**kwargs)
        for result in results.values():
            print()
            _print_result(result)
        if args.output_dir:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / "EXPERIMENTS.md").write_text(render_markdown(results))
            for exp_id, result in results.items():
                export_json(
                    args.output_dir / f"{exp_id}.json", result.to_payload()
                )
            print(f"\nreports written to {args.output_dir}")
        return 0
    run = REGISTRY[args.experiment]
    if args.experiment in ("fig4", "fig5", "fig6", "fig7"):
        kwargs["calibrate"] = not args.no_calibrate
    if args.experiment == "case_study":
        kwargs["recalibrate"] = not args.no_calibrate
    result = run(**kwargs)
    if args.experiment == "table1" and isinstance(result, ExperimentResult):
        print(table1_segments.table_text(result))
        print()
    _print_result(result)
    if args.output_dir:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        export_json(
            args.output_dir / f"{args.experiment}.json", result.to_payload()
        )
        print(f"\npayload written to {args.output_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
