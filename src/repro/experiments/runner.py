"""Run every paper experiment and render a combined report.

``run_all`` executes figs. 4–7, Table I and the case study;
``render_markdown`` produces the EXPERIMENTS.md content comparing measured
numbers against the paper's stated facts.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..analysis import format_table
from . import (
    case_study,
    fig4_radius,
    fig5_liner,
    fig6_substrate,
    fig7_cluster,
    paper_facts,
    table1_segments,
)
from .case_study import CaseStudyExperiment
from .harness import ExperimentResult

#: experiment id -> module run() callable
REGISTRY: dict[str, Callable[..., Any]] = {
    "fig4": fig4_radius.run,
    "fig5": fig5_liner.run,
    "table1": table1_segments.run,
    "fig6": fig6_substrate.run,
    "fig7": fig7_cluster.run,
    "case_study": case_study.run,
}


def run_all(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    verbose: bool = True,
    jobs: int = 1,
    calibrate: bool = True,
) -> dict[str, Any]:
    """Run every experiment; Table I reuses the Fig. 5 sweep.

    ``jobs`` sets the per-sweep worker-process count (1 = serial) and
    ``calibrate`` toggles the recalibrated Model A variant everywhere —
    the same knobs the single-experiment entry points take (the CLI's
    ``--jobs`` / ``--no-calibrate`` for ``all`` land here).
    """
    results: dict[str, Any] = {}
    for exp_id in ("fig4", "fig5", "fig6", "fig7"):
        if verbose:
            print(f"[{exp_id}] running ...")
        results[exp_id] = REGISTRY[exp_id](
            fem_resolution=fem_resolution, fast=fast, jobs=jobs, calibrate=calibrate
        )
    if verbose:
        print("[table1] deriving from fig5 ...")
    results["table1"] = table1_segments.run(
        fem_resolution=fem_resolution,
        fast=fast,
        fig5_result=results["fig5"],
        jobs=jobs,
    )
    if verbose:
        print("[case_study] running ...")
    results["case_study"] = case_study.run(
        fem_resolution=fem_resolution, fast=fast, recalibrate=calibrate, jobs=jobs
    )
    return results


def _figure_section(result: ExperimentResult, paper_errors: dict[str, tuple]) -> str:
    lines = [f"## {result.title}", ""]
    lines.append("```")
    lines.append(result.table_text())
    lines.append("```")
    lines.append("")
    lines.append("Errors vs our FEM reference (paper's errors vs COMSOL in brackets):")
    lines.append("")
    lines.append("| model | max err % | avg err % | paper max % | paper avg % |")
    lines.append("|---|---|---|---|---|")
    for name, err in result.errors.items():
        pct = err.as_percentages()
        paper = paper_errors.get(name)
        pmax = f"{paper[0]:.0f}" if paper else "-"
        pavg = f"{paper[1]:.0f}" if paper else "-"
        lines.append(
            f"| {name} | {pct['max_%']:.1f} | {pct['avg_%']:.1f} | {pmax} | {pavg} |"
        )
    lines.append("")
    lines.append("```")
    lines.append(result.plot_text())
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def render_markdown(results: dict[str, Any]) -> str:
    """EXPERIMENTS.md body: measured vs paper, per experiment."""
    sections = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "All temperatures are rises ΔT (K == °C) above the heat sink.",
        "Our FEM reference is the library's own finite-volume solver (see",
        "DESIGN.md substitutions), so absolute agreement with the paper's",
        "COMSOL numbers is not expected; curve *shapes* and model orderings",
        "are.",
        "",
    ]
    facts = {
        "fig4": paper_facts.FIG4_ERRORS,
        "fig5": {},
        "fig6": paper_facts.FIG6_ERRORS,
        "fig7": paper_facts.FIG7_ERRORS,
    }
    for exp_id in ("fig4", "fig5", "fig6", "fig7"):
        if exp_id in results:
            sections.append(_figure_section(results[exp_id], facts[exp_id]))
    if "table1" in results:
        result = results["table1"]
        sections.append("## Table I: error and run time vs segments")
        sections.append("")
        sections.append("```")
        sections.append(format_table(result.metadata["table_rows"]))
        sections.append("```")
        sections.append("")
        paper_rows = [["model", "paper max %", "paper avg %", "paper time [ms]"]]
        for name, (mx, av, ms) in paper_facts.TABLE1.items():
            paper_rows.append([name, mx, av, ms if ms is not None else "-"])
        sections.append("Paper's Table I for comparison:")
        sections.append("")
        sections.append("```")
        sections.append(format_table(paper_rows))
        sections.append("```")
        sections.append("")
    if "case_study" in results:
        exp: CaseStudyExperiment = results["case_study"]
        sections.append("## Case study: 3-D DRAM-uP")
        sections.append("")
        sections.append("```")
        sections.append(format_table(exp.rows(), float_format="{:.2f}"))
        sections.append("```")
        sections.append("")
        sections.append("Paper: " + ", ".join(
            f"{k} = {v:.1f} °C" for k, v in paper_facts.CASE_STUDY_RISES.items()
        ))
        sections.append("")
    return "\n".join(sections)
