"""Fig. 7 — max ΔT versus cluster size (one via split into n ∈ {1,2,4,9,16}).

The Eq. (22) transform keeps the total metal area constant, so the 1-D
baseline is flat while Models A/B and FEM show the saturating improvement
that comes from the growing liner surface.

The FEM reference uses the adiabatic unit-cell reduction (footprint/n per
member via).  An optional 3-D Cartesian cross-check solves the full block
with all n vias placed explicitly.
"""

from __future__ import annotations

from ..core.model_1d import Model1D
from ..core.model_a import ModelA
from ..core.model_b import ModelB
from ..fem import FEMReference
from ..perf import get_executor
from ..geometry import TSVCluster
from .harness import ExperimentResult, calibrated_model_a, run_sweep_experiment
from .params import FIG7_COUNTS, fig7_config

EXPERIMENT_ID = "fig7"
TITLE = "Fig. 7: max ΔT vs number of TTSVs (constant metal area)"


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    model_b_segments: int = 100,
    cartesian_cross_check: bool = False,
    calibrate: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Fig. 7.

    ``cartesian_cross_check`` additionally solves each point with the 3-D
    Cartesian solver on the full block (slow; off by default).  ``jobs``
    sets the sweep's worker-process count (1 = serial).
    """
    counts = FIG7_COUNTS[:3] if fast else FIG7_COUNTS
    cfg = fig7_config()

    def configure(n: int):
        return cfg.stack, TSVCluster(cfg.via, n), cfg.power

    reference = FEMReference(fem_resolution)
    models = [ModelA(cfg.fit), ModelB(model_b_segments), Model1D()]
    if calibrate:
        models.insert(1, calibrated_model_a(counts, configure, reference))
    if cartesian_cross_check:
        models.append(FEMReference("coarse", solver="cartesian"))
    return run_sweep_experiment(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="n TTSVs",
        values=counts,
        configure=configure,
        models=models,
        reference=reference,
        executor=get_executor(jobs),
        metadata={
            "caption": "tL=1um, tD=4um, tb=1um, tSi2,3=20um, r0=10um",
            "fast": fast,
            "cartesian_cross_check": cartesian_cross_check,
        },
    )
