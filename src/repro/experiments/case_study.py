"""Section IV-E experiment — the 3-D DRAM-µP system.

Wraps :mod:`repro.casestudy` into the experiment interface and optionally
re-runs the paper's *calibration workflow*: instead of taking k1/k2/c on
faith, fit them against our own FEM on the unit cell and report how well
the recalibrated Model A tracks the reference (the paper's 1.9-minute
"simulation of a block" step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..calibration import fit_coefficients
from ..casestudy import CaseStudyReport, analyze_case_study, build_case_study
from ..fem import FEMReference
from ..resistances import FittingCoefficients

EXPERIMENT_ID = "case_study"
TITLE = "Section IV-E: 3-D DRAM-uP case study"


@dataclass(frozen=True)
class CaseStudyExperiment:
    """Case-study outcome: paper-coefficient run plus optional recalibration."""

    report: CaseStudyReport
    recalibrated: FittingCoefficients | None = None
    recalibrated_rise: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def rows(self) -> list[list[Any]]:
        out = self.report.rows()
        if self.recalibrated is not None:
            out.append(
                [
                    f"model_a (recal. k1={self.recalibrated.k1:.2f}, "
                    f"k2={self.recalibrated.k2:.2f})",
                    self.recalibrated_rise,
                    float("nan"),
                ]
            )
        return out

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "experiment_id": EXPERIMENT_ID,
            "title": TITLE,
            "rises": self.report.rises(),
            "runtimes_ms": {
                name: r.solve_time * 1e3 for name, r in self.report.results.items()
            },
            "n_vias": self.report.system.n_vias,
            "metadata": self.metadata,
        }
        if self.recalibrated is not None:
            payload["recalibrated"] = {
                "k1": self.recalibrated.k1,
                "k2": self.recalibrated.k2,
                "c_bond": self.recalibrated.c_bond,
                "max_rise": self.recalibrated_rise,
            }
        return payload


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    recalibrate: bool = True,
    model_b_segments: int = 1000,
    jobs: int = 1,
) -> CaseStudyExperiment:
    """Run the case study; ``fast`` trims Model B to 100 segments.

    ``jobs`` is accepted for interface symmetry with the sweep experiments
    (``run_all`` forwards it everywhere) but unused: the case study solves
    a single operating point, so there is nothing to fan out.
    """
    del jobs
    if fast:
        model_b_segments = 100
    report = analyze_case_study(
        fem_resolution=fem_resolution, model_b_segments=model_b_segments
    )
    recalibrated = None
    recalibrated_rise = None
    if recalibrate:
        system = report.system
        # the paper calibrates on the block itself; we fit (k1, k2) against
        # our FEM on the bond-enhanced unit cell, sampling two via radii
        fem_stack = system.cell_stack.with_bond_conductivity_factor(
            FittingCoefficients.paper_case_study().c_bond
        )
        samples = [
            (fem_stack, system.via.with_radius(r), system.cell_power)
            for r in (system.via.radius * 0.7, system.via.radius, system.via.radius * 1.3)
        ]
        fit = fit_coefficients(
            samples,
            FEMReference(fem_resolution),
            initial=FittingCoefficients.paper_case_study(),
        )
        # apply the fitted k1/k2 with the physical bond factor back on the
        # raw stack (c plays the same role in both formulations)
        recalibrated = FittingCoefficients(
            fit.coefficients.k1,
            fit.coefficients.k2,
            FittingCoefficients.paper_case_study().c_bond,
        )
        from ..core.model_a import ModelA  # local import avoids a cycle

        recalibrated_rise = (
            ModelA(recalibrated)
            .solve(system.cell_stack, system.via, system.cell_power)
            .max_rise
        )
    return CaseStudyExperiment(
        report=report,
        recalibrated=recalibrated,
        recalibrated_rise=recalibrated_rise,
        metadata={"fast": fast, "model_b_segments": model_b_segments},
    )
