"""Paper parameters for every experiment, straight from the captions.

Figs. 4–7 all use the Section-IV block (100 µm × 100 µm, 500 µm first
substrate, SiO2 ILD/liner, polyimide bond, copper fill, k1 = 1.3,
k2 = 0.55); each figure varies one parameter and fixes the rest as listed
in its caption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import PowerSpec, Stack3D, TSV, paper_stack, paper_tsv
from ..resistances import FittingCoefficients
from ..units import um


@dataclass(frozen=True)
class BlockConfig:
    """One fully specified Section-IV block geometry."""

    stack: Stack3D
    via: TSV
    power: PowerSpec
    fit: FittingCoefficients

    def with_via(self, via: TSV) -> "BlockConfig":
        return BlockConfig(self.stack, via, self.power, self.fit)


def _block(
    *, t_si_upper: float, t_ild: float, t_bond: float, radius: float, liner: float
) -> BlockConfig:
    return BlockConfig(
        stack=paper_stack(t_si_upper=t_si_upper, t_ild=t_ild, t_bond=t_bond),
        via=paper_tsv(radius=radius, liner_thickness=liner),
        power=PowerSpec(),
        fit=FittingCoefficients.paper_block(),
    )


# ---------------------------------------------------------------------------
# Fig. 4 — radius sweep.  Caption: tL = 0.5 µm, tD = 4 µm, tb = 1 µm;
# tSi2 = tSi3 = 5 µm for r ≤ 5 µm, 45 µm for r > 5 µm (aspect-ratio limit).
# ---------------------------------------------------------------------------
FIG4_RADII_UM = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0]
FIG4_RADII_UM_FAST = [1.0, 3.0, 5.0, 8.0, 12.0, 20.0]
FIG4_THIN_SUBSTRATE_UM = 5.0
FIG4_THICK_SUBSTRATE_UM = 45.0
FIG4_RADIUS_SWITCH_UM = 5.0


def fig4_config(radius_um: float) -> BlockConfig:
    """The Fig. 4 block at one swept radius (µm)."""
    t_si = (
        FIG4_THIN_SUBSTRATE_UM
        if radius_um <= FIG4_RADIUS_SWITCH_UM
        else FIG4_THICK_SUBSTRATE_UM
    )
    return _block(
        t_si_upper=um(t_si),
        t_ild=um(4.0),
        t_bond=um(1.0),
        radius=um(radius_um),
        liner=um(0.5),
    )


# ---------------------------------------------------------------------------
# Fig. 5 / Table I — liner sweep.  Caption: r = 5 µm, tD = 7 µm, tb = 1 µm,
# tSi2 = tSi3 = 45 µm.
# ---------------------------------------------------------------------------
FIG5_LINERS_UM = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
FIG5_LINERS_UM_FAST = [0.5, 1.5, 3.0]
TABLE1_SEGMENTS = [1, 20, 100, 500]


def fig5_config(liner_um: float) -> BlockConfig:
    """The Fig. 5 block at one swept liner thickness (µm)."""
    return _block(
        t_si_upper=um(45.0),
        t_ild=um(7.0),
        t_bond=um(1.0),
        radius=um(5.0),
        liner=um(liner_um),
    )


# ---------------------------------------------------------------------------
# Fig. 6 — substrate sweep.  Caption: tL = 1 µm, tD = 7 µm, tb = 1 µm,
# r = 8 µm.
# ---------------------------------------------------------------------------
FIG6_SUBSTRATES_UM = [5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 80.0]
FIG6_SUBSTRATES_UM_FAST = [5.0, 20.0, 45.0, 80.0]


def fig6_config(t_si_um: float) -> BlockConfig:
    """The Fig. 6 block at one swept upper-substrate thickness (µm)."""
    return _block(
        t_si_upper=um(t_si_um),
        t_ild=um(7.0),
        t_bond=um(1.0),
        radius=um(8.0),
        liner=um(1.0),
    )


# ---------------------------------------------------------------------------
# Fig. 7 — cluster sweep.  Caption: tL = 1 µm, tD = 4 µm, tb = 1 µm,
# tSi2 = tSi3 = 20 µm, r0 = 10 µm; a via divided into 1/2/4/9/16 members.
# ---------------------------------------------------------------------------
FIG7_COUNTS = [1, 2, 4, 9, 16]


def fig7_config() -> BlockConfig:
    """The (fixed) Fig. 7 block; the sweep varies only the member count."""
    return _block(
        t_si_upper=um(20.0),
        t_ild=um(4.0),
        t_bond=um(1.0),
        radius=um(10.0),
        liner=um(1.0),
    )
