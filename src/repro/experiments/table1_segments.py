"""Table I — accuracy and runtime versus Model B segment count.

The paper evaluates B(1)/B(20)/B(100)/B(500), Model A and the 1-D model
over the Fig. 5 liner sweep and reports max/avg error against FEM plus the
solve time.  This module re-derives the table from the Fig. 5 experiment.
"""

from __future__ import annotations

from typing import Any

from ..analysis import format_table
from .harness import ExperimentResult
from . import fig5_liner

EXPERIMENT_ID = "table1"
TITLE = "Table I: error and run time vs # of segments in Model B"


def rows_from_fig5(result: ExperimentResult) -> list[list[Any]]:
    """Table I rows (model, max err %, avg err %, time ms) from Fig. 5 data.

    Order mirrors the paper: B(1), B(20), B(100), B(500), A, 1-D.
    """
    ordered = sorted(
        (name for name in result.errors if name.startswith("model_b(")),
        key=lambda n: int(n[len("model_b("):-1]),
    )
    ordered += [n for n in ("model_a", "model_1d") if n in result.errors]
    out: list[list[Any]] = [["model", "max err %", "avg err %", "time [ms]"]]
    for name in ordered:
        pct = result.errors[name].as_percentages()
        out.append([name, pct["max_%"], pct["avg_%"], result.runtimes_ms[name]])
    return out


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    fig5_result: ExperimentResult | None = None,
    jobs: int = 1,
    calibrate: bool = True,
) -> ExperimentResult:
    """Reproduce Table I (reusing a Fig. 5 run when provided).

    ``jobs`` and ``calibrate`` only matter when the Fig. 5 sweep is run
    here rather than passed in.
    """
    result = fig5_result or fig5_liner.run(
        fem_resolution=fem_resolution, fast=fast, jobs=jobs, calibrate=calibrate
    )
    metadata = dict(result.metadata)
    metadata["table_rows"] = rows_from_fig5(result)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label=result.x_label,
        x_values=result.x_values,
        series=result.series,
        reference_name=result.reference_name,
        errors=result.errors,
        runtimes_ms=result.runtimes_ms,
        metadata=metadata,
        sweep_result=result.sweep_result,
    )


def table_text(result: ExperimentResult) -> str:
    """Render Table I as aligned text."""
    return format_table(result.metadata["table_rows"])
