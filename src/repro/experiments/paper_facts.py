"""Quantitative claims stated in the paper's text, for comparison.

Only numbers printed in the running text or tables are recorded here
(figure curves are not digitised); EXPERIMENTS.md compares our measured
values against these.
"""

from __future__ import annotations

#: Fig. 4 (radius sweep): (max |error| %, avg |error| %) vs FEM
FIG4_ERRORS = {"model_a": (6.0, 3.0), "model_b(100)": (11.0, 3.0), "model_1d": (21.0, 13.0)}

#: Fig. 5: FEM ΔT spread across the liner sweep: "up to 11%, ≈ 4 °C"
FIG5_FEM_SPREAD_PCT = 11.0
FIG5_FEM_SPREAD_DEGC = 4.0

#: Table I (over the Fig. 5 sweep): model -> (max err %, avg err %, time ms)
TABLE1 = {
    "model_b(1)": (23.0, 19.0, 1.0),
    "model_b(20)": (12.0, 11.0, 3.0),
    "model_b(100)": (6.0, 4.0, 32.0),
    "model_b(500)": (5.0, 3.0, 2475.0),
    "model_a": (4.0, 2.0, None),
    "model_1d": (30.0, 23.0, None),
}

#: Fig. 6 (substrate sweep): (max err %, avg err %) and the qualitative
#: minimum: ΔT falls for 5 ≤ tSi ≤ 20 µm, rises beyond ≈ 20 µm
FIG6_ERRORS = {"model_a": (7.0, 4.0), "model_b(100)": (18.0, 6.0), "model_1d": (32.0, 17.0)}
FIG6_MINIMUM_RANGE_UM = (10.0, 45.0)

#: Fig. 7 (cluster sweep): (max err %, avg err %); 1-D flat in n
FIG7_ERRORS = {"model_a": (1.0, 1.0), "model_b(100)": (4.0, 2.0), "model_1d": (14.0, 8.0)}

#: Section IV-E case study: model -> max ΔT (°C rise above the sink)
CASE_STUDY_RISES = {
    "model_a": 12.8,
    "model_b(1000)": 13.9,
    "fem": 12.0,
    "model_1d": 20.0,
}
#: and the reported runtimes
CASE_STUDY_RUNTIMES = {
    "fem": 59 * 60.0,  # seconds
    "model_a_calibration": 1.9 * 60.0,
    "model_b(1000)": 8.5,
}

#: overall claim (Conclusions): average error across all parameter sweeps
OVERALL_AVG_ERROR = {"model_a": 2.0, "model_b": 4.0}
