"""Fig. 5 — max ΔT versus liner thickness (0.5–3 µm).

The liner is the lateral gateway into the via; thickening it raises every
curve except the 1-D baseline, which is blind to the lateral path.  The
paper plots Model B at four segment counts here, which doubles as the
Table I accuracy/runtime study.
"""

from __future__ import annotations

from ..core.model_1d import Model1D
from ..core.model_a import ModelA
from ..core.model_b import ModelB, SegmentScheme
from ..fem import FEMReference
from ..perf import get_executor
from .harness import ExperimentResult, calibrated_model_a, run_sweep_experiment
from .params import FIG5_LINERS_UM, FIG5_LINERS_UM_FAST, TABLE1_SEGMENTS, fig5_config

EXPERIMENT_ID = "fig5"
TITLE = "Fig. 5: max ΔT vs liner thickness"


def model_b_variants(segment_counts=TABLE1_SEGMENTS) -> list[ModelB]:
    """The B(1)/B(20)/B(100)/B(500) family with the paper's per-plane
    split ((1,1), (2,20), (10,100), (50,500))."""
    variants = []
    for n in segment_counts:
        n_first = max(1, n // 10) if n > 1 else 1
        variants.append(ModelB(SegmentScheme((n_first, n, n))))
    return variants


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    segment_counts=TABLE1_SEGMENTS,
    calibrate: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Fig. 5 (and the sweep behind Table I).

    ``jobs`` sets the sweep's worker-process count (1 = serial).
    """
    liners = FIG5_LINERS_UM_FAST if fast else FIG5_LINERS_UM

    def configure(liner_um: float):
        cfg = fig5_config(liner_um)
        return cfg.stack, cfg.via, cfg.power

    reference = FEMReference(fem_resolution)
    models = [
        ModelA(fig5_config(liners[0]).fit),
        *model_b_variants(segment_counts),
        Model1D(),
    ]
    if calibrate:
        models.insert(1, calibrated_model_a(liners, configure, reference))
    return run_sweep_experiment(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="liner [um]",
        values=liners,
        configure=configure,
        models=models,
        reference=reference,
        executor=get_executor(jobs),
        metadata={
            "caption": "r=5um, tD=7um, tb=1um, tSi2,3=45um",
            "fast": fast,
            "segment_counts": list(segment_counts),
        },
    )
