"""Experiments: one module per paper table/figure plus a combined runner."""

from . import (
    case_study,
    fig4_radius,
    fig5_liner,
    fig6_substrate,
    fig7_cluster,
    paper_facts,
    table1_segments,
)
from .harness import ExperimentResult, run_sweep_experiment
from .runner import REGISTRY, render_markdown, run_all

__all__ = [
    "ExperimentResult",
    "run_sweep_experiment",
    "run_all",
    "render_markdown",
    "REGISTRY",
    "fig4_radius",
    "fig5_liner",
    "fig6_substrate",
    "fig7_cluster",
    "table1_segments",
    "case_study",
    "paper_facts",
]
