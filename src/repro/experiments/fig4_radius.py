"""Fig. 4 — max ΔT versus TTSV radius (1–20 µm).

The aspect-ratio limit forces thicker upper substrates for larger vias
(5 µm substrates up to r = 5 µm, 45 µm beyond), producing the
characteristic jump in the middle of the paper's figure.  All four curves
(Model A, Model B(100), 1-D, FEM) fall as the radius grows.
"""

from __future__ import annotations

from ..core.model_1d import Model1D
from ..core.model_a import ModelA
from ..core.model_b import ModelB
from ..fem import FEMReference
from ..perf import get_executor
from .harness import ExperimentResult, calibrated_model_a, run_sweep_experiment
from .params import FIG4_RADII_UM, FIG4_RADII_UM_FAST, fig4_config

EXPERIMENT_ID = "fig4"
TITLE = "Fig. 4: max ΔT vs TTSV radius"


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    model_b_segments: int = 100,
    calibrate: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Fig. 4.

    Parameters
    ----------
    fem_resolution:
        Mesh preset for the FEM reference.
    fast:
        Use the reduced radius list (for CI-speed runs).
    model_b_segments:
        Segment count of the Model B curve (the paper plots B(100)).
    calibrate:
        Also run Model A with k1/k2 freshly fitted against our FEM
        (``model_a_cal``) — the paper's own coefficient workflow.
    jobs:
        Worker processes for the sweep (1 = serial).
    """
    radii = FIG4_RADII_UM_FAST if fast else FIG4_RADII_UM

    def configure(radius_um: float):
        cfg = fig4_config(radius_um)
        return cfg.stack, cfg.via, cfg.power

    reference = FEMReference(fem_resolution)
    models = [
        ModelA(fig4_config(radii[0]).fit),
        ModelB(model_b_segments),
        Model1D(),
    ]
    if calibrate:
        models.insert(1, calibrated_model_a(radii, configure, reference))
    return run_sweep_experiment(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="radius [um]",
        values=radii,
        configure=configure,
        models=models,
        reference=reference,
        executor=get_executor(jobs),
        metadata={
            "caption": "tL=0.5um, tD=4um, tb=1um; tSi2,3 = 5um (r<=5) / 45um (r>5)",
            "fast": fast,
        },
    )
