"""Fig. 6 — max ΔT versus upper-substrate thickness (5–80 µm).

The headline non-monotonic result: thinning the substrate below ~20 µm
*raises* the temperature because it chokes the lateral spreading path into
the via, while thickening it raises the vertical resistance.  Models A and
B capture the minimum; the 1-D baseline is monotonic.
"""

from __future__ import annotations

from ..core.model_1d import Model1D
from ..core.model_a import ModelA
from ..core.model_b import ModelB
from ..fem import FEMReference
from ..perf import get_executor
from .harness import ExperimentResult, calibrated_model_a, run_sweep_experiment
from .params import FIG6_SUBSTRATES_UM, FIG6_SUBSTRATES_UM_FAST, fig6_config

EXPERIMENT_ID = "fig6"
TITLE = "Fig. 6: max ΔT vs substrate thickness (non-monotonic)"


def run(
    *,
    fem_resolution: str | tuple[int, int] = "medium",
    fast: bool = False,
    model_b_segments: int = 100,
    calibrate: bool = True,
    jobs: int = 1,
) -> ExperimentResult:
    """Reproduce Fig. 6 (``jobs`` workers for the sweep; 1 = serial)."""
    thicknesses = FIG6_SUBSTRATES_UM_FAST if fast else FIG6_SUBSTRATES_UM

    def configure(t_si_um: float):
        cfg = fig6_config(t_si_um)
        return cfg.stack, cfg.via, cfg.power

    reference = FEMReference(fem_resolution)
    models = [
        ModelA(fig6_config(thicknesses[0]).fit),
        ModelB(model_b_segments),
        Model1D(),
    ]
    if calibrate:
        models.insert(1, calibrated_model_a(thicknesses, configure, reference))
    return run_sweep_experiment(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        x_label="tSi2,3 [um]",
        values=thicknesses,
        configure=configure,
        models=models,
        reference=reference,
        executor=get_executor(jobs),
        metadata={
            "caption": "tL=1um, tD=7um, tb=1um, r=8um",
            "fast": fast,
        },
    )
