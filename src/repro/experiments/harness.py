"""Shared experiment harness.

An experiment = a sweep + a reference model + error metrics + report
rendering.  Each ``figN``/``table1``/``case_study`` module configures this
harness with the paper's parameters; the benchmark suite then prints the
same rows/series the paper reports.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis import (
    ErrorMetrics,
    ascii_plot,
    format_series_table,
    series_errors,
)
from ..calibration import fit_coefficients
from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..core.sweep import Configurator, SweepResult, sweep
from ..errors import ExperimentError
from ..perf import (
    SweepExecutor,
    calibration_fit_key,
    calibration_key,
    model_key,
    solve_key,
)
from ..perf.memo import memoized_fit


@dataclass(frozen=True)
class ExperimentResult:
    """A completed experiment, ready for reporting."""

    experiment_id: str
    title: str
    x_label: str
    x_values: list[Any]
    series: dict[str, list[float]]  # model name -> max ΔT series
    reference_name: str
    errors: dict[str, ErrorMetrics]  # vs the reference, per non-reference model
    runtimes_ms: dict[str, float]  # mean solve time per model
    metadata: dict[str, Any] = field(default_factory=dict)
    sweep_result: SweepResult | None = None

    def table_text(self) -> str:
        """The figure's data as an aligned table (ΔT in °C rise)."""
        return format_series_table(self.x_label, self.x_values, self.series)

    def plot_text(self, *, width: int = 72, height: int = 18) -> str:
        """ASCII rendition of the figure."""
        x = [float(v) for v in self.x_values]
        return ascii_plot(
            x,
            self.series,
            width=width,
            height=height,
            x_label=self.x_label,
            y_label="max ΔT [°C]",
        )

    def error_rows(self) -> list[list[Any]]:
        """Error table rows: model, max %, avg %, mean runtime ms."""
        rows: list[list[Any]] = [["model", "max err %", "avg err %", "time [ms]"]]
        for name, err in self.errors.items():
            pct = err.as_percentages()
            rows.append([name, pct["max_%"], pct["avg_%"], self.runtimes_ms[name]])
        return rows

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable dump for the export helpers and the run store.

        ``errors`` holds the raw fractions (exact float round-trip via
        :meth:`from_payload`); ``errors_pct`` keeps the human-readable
        percentages the reports use.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": self.x_values,
            "series": self.series,
            "reference": self.reference_name,
            "errors": {
                name: {
                    "max_error": err.max_error,
                    "avg_error": err.avg_error,
                    "rms_error": err.rms_error,
                    "signed_mean": err.signed_mean,
                }
                for name, err in self.errors.items()
            },
            "errors_pct": {
                name: err.as_percentages() for name, err in self.errors.items()
            },
            "runtimes_ms": self.runtimes_ms,
            "metadata": self.metadata,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_payload` output (store/JSON).

        The numeric content round-trips exactly (JSON preserves doubles);
        only ``sweep_result`` — the raw per-point solver output — is not
        serialised and comes back as ``None``.
        """
        try:
            raw_errors = payload.get("errors")
            if raw_errors is not None:
                errors = {
                    name: ErrorMetrics(**values) for name, values in raw_errors.items()
                }
            else:  # pre-store payloads carried percentages only
                errors = {
                    name: ErrorMetrics(
                        max_error=pct["max_%"] / 100.0,
                        avg_error=pct["avg_%"] / 100.0,
                        rms_error=pct["rms_%"] / 100.0,
                        signed_mean=pct["signed_mean_%"] / 100.0,
                    )
                    for name, pct in payload["errors_pct"].items()
                }
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                x_label=payload["x_label"],
                x_values=list(payload["x_values"]),
                series={name: list(ys) for name, ys in payload["series"].items()},
                reference_name=payload["reference"],
                errors=errors,
                runtimes_ms=dict(payload["runtimes_ms"]),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed experiment payload: {exc!r}"
            ) from exc


def calibration_sample_indexes(n_values: int, n_samples: int = 4) -> list[int]:
    """Indexes of the sweep values calibration samples at.

    Up to ``n_samples`` evenly spaced positions.  Shared by the eager path
    (:func:`calibrated_model_a`) and the execution-plan compiler, which
    lowers the same samples into plan nodes — both must pick identical
    values for the fitted coefficients to match.
    """
    if n_samples < 2:
        raise ExperimentError("calibration needs at least two samples")
    step = max(1, (n_values - 1) // (n_samples - 1)) if n_values > 1 else 1
    picked = list(range(n_values))[::step][:n_samples]
    if len(picked) < 2:
        picked = list(range(n_values))[:2]
    return picked


def calibration_sample_values(
    values: Sequence[Any], n_samples: int = 4
) -> list[Any]:
    """The sweep values calibration samples at (see the index variant)."""
    values = list(values)
    return [values[i] for i in calibration_sample_indexes(len(values), n_samples)]


def calibrated_model_from_fit(
    coefficients: Any, *, name: str = "model_a_cal"
) -> ModelA:
    """The ``model_a_cal`` instance a finished coefficient fit defines."""
    model = ModelA(coefficients)
    model.name = name
    return model


def calibrated_model_a(
    values: Sequence[Any],
    configure: Configurator,
    reference: ThermalTSVModel,
    *,
    n_samples: int = 4,
    name: str = "model_a_cal",
) -> ModelA:
    """Model A with coefficients fitted to the experiment's own reference.

    This is the paper's actual workflow — k1/k2 come from "the simulation
    of a block" — re-run against *our* FEM.  Samples are taken at up to
    ``n_samples`` evenly spaced sweep values.

    Finished fits are memoized in the global result cache keyed on
    (reference config, sample solve keys) — the same
    :func:`repro.perf.calibration_key` identity the execution-plan
    compiler uses — so repeated in-process batches skip the least-squares
    fit itself, whichever path (eager or planned) ran first.  The fit is
    deterministic, so a cache hit returns identical coefficients.
    """
    samples = [configure(v) for v in calibration_sample_values(values, n_samples)]
    fit_key = calibration_fit_key(
        calibration_key(
            model_key(reference),
            (solve_key(reference, *sample) for sample in samples),
            name,
        )
    )
    fit, _ = memoized_fit(fit_key, lambda: fit_coefficients(samples, reference))
    return calibrated_model_from_fit(fit.coefficients, name=name)


def run_sweep_experiment(
    *,
    experiment_id: str,
    title: str,
    x_label: str,
    values: Sequence[Any],
    configure: Configurator,
    models: Sequence[ThermalTSVModel],
    reference: ThermalTSVModel,
    metadata: dict[str, Any] | None = None,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Sweep all models plus the reference and compute errors against it.

    ``executor`` selects the sweep execution strategy (serial by default;
    see :class:`repro.perf.ParallelExecutor` for ``--jobs N`` fan-out).
    """
    all_models = list(models) + [reference]
    names = [m.name for m in all_models]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate model names in experiment: {names}")
    result = sweep(
        x_label, values, all_models, configure, metadata=metadata,
        executor=executor,
    )
    return assemble_experiment(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        values=values,
        model_names=[m.name for m in models],
        reference_name=reference.name,
        result=result,
        metadata=metadata,
    )


def assemble_experiment(
    *,
    experiment_id: str,
    title: str,
    x_label: str,
    values: Sequence[Any],
    model_names: Sequence[str],
    reference_name: str,
    result: SweepResult,
    metadata: dict[str, Any] | None = None,
) -> ExperimentResult:
    """Derive an :class:`ExperimentResult` from an already-solved sweep.

    The "assemble" half of :func:`run_sweep_experiment`: series, errors
    against the reference and mean runtimes are pure functions of the
    solved points, so the execution-plan scheduler reuses this unchanged
    to reassemble per-scenario results from plan nodes — guaranteeing the
    planned and eager paths build byte-identical payloads.
    """
    all_names = list(model_names) + [reference_name]
    reference_series = result.series(reference_name)
    series = {name: result.series(name) for name in all_names}
    errors = {
        name: series_errors(series[name], reference_series) for name in model_names
    }
    runtimes = {
        name: float(
            np.mean([r.solve_time for r in result.result_series(name)]) * 1e3
        )
        for name in all_names
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=list(values),
        series=series,
        reference_name=reference_name,
        errors=errors,
        runtimes_ms=runtimes,
        metadata=metadata or {},
        sweep_result=result,
    )
