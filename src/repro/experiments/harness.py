"""Shared experiment harness.

An experiment = a sweep + a reference model + error metrics + report
rendering.  Each ``figN``/``table1``/``case_study`` module configures this
harness with the paper's parameters; the benchmark suite then prints the
same rows/series the paper reports.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..analysis import (
    ErrorMetrics,
    ascii_plot,
    format_series_table,
    series_errors,
)
from ..calibration import fit_coefficients
from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..core.sweep import Configurator, SweepResult, sweep
from ..errors import ExperimentError
from ..perf import SweepExecutor


@dataclass(frozen=True)
class ExperimentResult:
    """A completed experiment, ready for reporting."""

    experiment_id: str
    title: str
    x_label: str
    x_values: list[Any]
    series: dict[str, list[float]]  # model name -> max ΔT series
    reference_name: str
    errors: dict[str, ErrorMetrics]  # vs the reference, per non-reference model
    runtimes_ms: dict[str, float]  # mean solve time per model
    metadata: dict[str, Any] = field(default_factory=dict)
    sweep_result: SweepResult | None = None

    def table_text(self) -> str:
        """The figure's data as an aligned table (ΔT in °C rise)."""
        return format_series_table(self.x_label, self.x_values, self.series)

    def plot_text(self, *, width: int = 72, height: int = 18) -> str:
        """ASCII rendition of the figure."""
        x = [float(v) for v in self.x_values]
        return ascii_plot(
            x,
            self.series,
            width=width,
            height=height,
            x_label=self.x_label,
            y_label="max ΔT [°C]",
        )

    def error_rows(self) -> list[list[Any]]:
        """Error table rows: model, max %, avg %, mean runtime ms."""
        rows: list[list[Any]] = [["model", "max err %", "avg err %", "time [ms]"]]
        for name, err in self.errors.items():
            pct = err.as_percentages()
            rows.append([name, pct["max_%"], pct["avg_%"], self.runtimes_ms[name]])
        return rows

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable dump for the export helpers and the run store.

        ``errors`` holds the raw fractions (exact float round-trip via
        :meth:`from_payload`); ``errors_pct`` keeps the human-readable
        percentages the reports use.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": self.x_values,
            "series": self.series,
            "reference": self.reference_name,
            "errors": {
                name: {
                    "max_error": err.max_error,
                    "avg_error": err.avg_error,
                    "rms_error": err.rms_error,
                    "signed_mean": err.signed_mean,
                }
                for name, err in self.errors.items()
            },
            "errors_pct": {
                name: err.as_percentages() for name, err in self.errors.items()
            },
            "runtimes_ms": self.runtimes_ms,
            "metadata": self.metadata,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_payload` output (store/JSON).

        The numeric content round-trips exactly (JSON preserves doubles);
        only ``sweep_result`` — the raw per-point solver output — is not
        serialised and comes back as ``None``.
        """
        try:
            raw_errors = payload.get("errors")
            if raw_errors is not None:
                errors = {
                    name: ErrorMetrics(**values) for name, values in raw_errors.items()
                }
            else:  # pre-store payloads carried percentages only
                errors = {
                    name: ErrorMetrics(
                        max_error=pct["max_%"] / 100.0,
                        avg_error=pct["avg_%"] / 100.0,
                        rms_error=pct["rms_%"] / 100.0,
                        signed_mean=pct["signed_mean_%"] / 100.0,
                    )
                    for name, pct in payload["errors_pct"].items()
                }
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                x_label=payload["x_label"],
                x_values=list(payload["x_values"]),
                series={name: list(ys) for name, ys in payload["series"].items()},
                reference_name=payload["reference"],
                errors=errors,
                runtimes_ms=dict(payload["runtimes_ms"]),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed experiment payload: {exc!r}"
            ) from exc


def calibrated_model_a(
    values: Sequence[Any],
    configure: Configurator,
    reference: ThermalTSVModel,
    *,
    n_samples: int = 4,
    name: str = "model_a_cal",
) -> ModelA:
    """Model A with coefficients fitted to the experiment's own reference.

    This is the paper's actual workflow — k1/k2 come from "the simulation
    of a block" — re-run against *our* FEM.  Samples are taken at up to
    ``n_samples`` evenly spaced sweep values.
    """
    if n_samples < 2:
        raise ExperimentError("calibration needs at least two samples")
    step = max(1, (len(values) - 1) // (n_samples - 1)) if len(values) > 1 else 1
    picked = list(values)[::step][:n_samples]
    if len(picked) < 2:
        picked = list(values)[:2]
    samples = [configure(v) for v in picked]
    fit = fit_coefficients(samples, reference)
    model = ModelA(fit.coefficients)
    model.name = name
    return model


def run_sweep_experiment(
    *,
    experiment_id: str,
    title: str,
    x_label: str,
    values: Sequence[Any],
    configure: Configurator,
    models: Sequence[ThermalTSVModel],
    reference: ThermalTSVModel,
    metadata: dict[str, Any] | None = None,
    executor: SweepExecutor | None = None,
) -> ExperimentResult:
    """Sweep all models plus the reference and compute errors against it.

    ``executor`` selects the sweep execution strategy (serial by default;
    see :class:`repro.perf.ParallelExecutor` for ``--jobs N`` fan-out).
    """
    all_models = list(models) + [reference]
    names = [m.name for m in all_models]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate model names in experiment: {names}")
    result = sweep(
        x_label, values, all_models, configure, metadata=metadata,
        executor=executor,
    )
    reference_series = result.series(reference.name)
    series = {m.name: result.series(m.name) for m in all_models}
    errors = {
        m.name: series_errors(series[m.name], reference_series) for m in models
    }
    runtimes = {
        m.name: float(
            np.mean([r.solve_time for r in result.result_series(m.name)]) * 1e3
        )
        for m in all_models
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label=x_label,
        x_values=list(values),
        series=series,
        reference_name=reference.name,
        errors=errors,
        runtimes_ms=runtimes,
        metadata=metadata or {},
        sweep_result=result,
    )
