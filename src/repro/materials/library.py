"""Standard material library.

Conductivities for the paper's materials come from ``repro.constants``;
density/specific-heat values are textbook numbers used only by the optional
transient extension.
"""

from __future__ import annotations

from .. import constants
from ..errors import MaterialError
from .material import Material

SILICON = Material(
    "silicon",
    thermal_conductivity=constants.K_SILICON,
    density=2329.0,
    specific_heat=700.0,
    conductivity_slope=-0.42,  # silicon k falls with T near 300 K
)
SILICON_DIOXIDE = Material(
    "silicon_dioxide",
    thermal_conductivity=constants.K_SILICON_DIOXIDE,
    density=2200.0,
    specific_heat=730.0,
)
COPPER = Material(
    "copper",
    thermal_conductivity=constants.K_COPPER,  # paper value kf = 400
    density=8960.0,
    specific_heat=385.0,
)
POLYIMIDE = Material(
    "polyimide",
    thermal_conductivity=constants.K_POLYIMIDE,
    density=1420.0,
    specific_heat=1090.0,
)
TUNGSTEN = Material(
    "tungsten",
    thermal_conductivity=constants.K_TUNGSTEN,
    density=19300.0,
    specific_heat=134.0,
)
ALUMINIUM = Material(
    "aluminium",
    thermal_conductivity=constants.K_ALUMINIUM,
    density=2700.0,
    specific_heat=897.0,
)
BCB = Material(
    "bcb",
    thermal_conductivity=constants.K_BCB,
    density=1050.0,
    specific_heat=2180.0,
)

_REGISTRY: dict[str, Material] = {
    m.name: m
    for m in (SILICON, SILICON_DIOXIDE, COPPER, POLYIMIDE, TUNGSTEN, ALUMINIUM, BCB)
}


def get(name: str) -> Material:
    """Look a material up by name.

    >>> get("silicon").thermal_conductivity
    148.0
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MaterialError(f"unknown material {name!r}; known: {known}") from None


def register(material: Material, *, overwrite: bool = False) -> None:
    """Add a material to the library registry.

    Parameters
    ----------
    material:
        The material to register under ``material.name``.
    overwrite:
        Allow replacing an existing entry; otherwise re-registering an
        existing name raises :class:`MaterialError`.
    """
    if material.name in _REGISTRY and not overwrite:
        raise MaterialError(f"material {material.name!r} already registered")
    _REGISTRY[material.name] = material


def names() -> list[str]:
    """All registered material names, sorted."""
    return sorted(_REGISTRY)
