"""Effective-medium conductivity models.

The paper notes that "since metal interconnects are embedded in the ILD,
kD can be adapted to include the effect of the metal within the ILD layer".
These helpers derive such an effective kD from the metal volume fraction.

All bounds/estimates here concern *isotropic two-phase composites*:

* :func:`parallel_bound` (Voigt / arithmetic mean) — upper bound, exact for
  metal wires running along the heat-flow direction;
* :func:`series_bound` (Reuss / harmonic mean) — lower bound, exact for
  layered metal/dielectric stacks perpendicular to the flow;
* :func:`maxwell_eucken` — dilute spherical-inclusion estimate, the usual
  choice for sparse vias/wires in a dielectric matrix;
* :func:`effective_ild_conductivity` — convenience wrapper returning an
  adapted ILD :class:`~repro.materials.material.Material`.
"""

from __future__ import annotations

from ..errors import MaterialError
from ..units import require_fraction, require_positive
from .material import Material


def parallel_bound(k_matrix: float, k_inclusion: float, fraction: float) -> float:
    """Voigt (arithmetic-mean) upper bound for a two-phase composite."""
    require_positive("k_matrix", k_matrix)
    require_positive("k_inclusion", k_inclusion)
    fraction = require_fraction("fraction", fraction)
    return (1.0 - fraction) * k_matrix + fraction * k_inclusion


def series_bound(k_matrix: float, k_inclusion: float, fraction: float) -> float:
    """Reuss (harmonic-mean) lower bound for a two-phase composite."""
    require_positive("k_matrix", k_matrix)
    require_positive("k_inclusion", k_inclusion)
    fraction = require_fraction("fraction", fraction)
    return 1.0 / ((1.0 - fraction) / k_matrix + fraction / k_inclusion)


def maxwell_eucken(k_matrix: float, k_inclusion: float, fraction: float) -> float:
    """Maxwell–Eucken estimate for dilute spherical inclusions.

    Reduces to ``k_matrix`` at fraction 0 and to ``k_inclusion`` at
    fraction 1, and always lies between the series and parallel bounds.
    """
    require_positive("k_matrix", k_matrix)
    require_positive("k_inclusion", k_inclusion)
    fraction = require_fraction("fraction", fraction)
    km, ki, f = k_matrix, k_inclusion, fraction
    num = 2.0 * km + ki + 2.0 * f * (ki - km)
    den = 2.0 * km + ki - f * (ki - km)
    return km * num / den


_MODELS = {
    "parallel": parallel_bound,
    "series": series_bound,
    "maxwell": maxwell_eucken,
}


def effective_ild_conductivity(
    ild: Material,
    metal: Material,
    metal_fraction: float,
    *,
    model: str = "maxwell",
) -> Material:
    """Return an ILD material whose kD accounts for embedded metal.

    Parameters
    ----------
    ild, metal:
        The dielectric matrix and the embedded interconnect metal.
    metal_fraction:
        Volume fraction of metal in the BEOL stack (typically 0.1–0.3).
    model:
        One of ``"maxwell"`` (default), ``"parallel"``, ``"series"``.
    """
    try:
        fn = _MODELS[model]
    except KeyError:
        raise MaterialError(
            f"unknown effective-medium model {model!r}; known: {sorted(_MODELS)}"
        ) from None
    k_eff = fn(ild.thermal_conductivity, metal.thermal_conductivity, metal_fraction)
    return ild.with_conductivity(k_eff, name=f"{ild.name}+{metal.name}({metal_fraction:g})")
