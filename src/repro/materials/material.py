"""The :class:`Material` value type.

A material carries the thermal conductivity used by every model in the
library, plus optional density/specific-heat data consumed by the transient
network extension.  Conductivity may optionally vary linearly with
temperature, which is sufficient for the narrow (tens of kelvin) rises the
paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import MaterialError
from ..units import require_non_negative, require_positive


@dataclass(frozen=True, slots=True)
class Material:
    """An isotropic solid with thermal properties.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"silicon"``.
    thermal_conductivity:
        k at the reference temperature, W/(m·K). Must be positive.
    density:
        kg/m³; optional, needed only for transient analysis.
    specific_heat:
        J/(kg·K); optional, needed only for transient analysis.
    conductivity_slope:
        dk/dT in W/(m·K²) around ``reference_temperature``; 0 keeps k
        constant (the paper's steady-state models are temperature
        independent).
    reference_temperature:
        Temperature (K) at which ``thermal_conductivity`` holds.
    """

    name: str
    thermal_conductivity: float
    density: float | None = None
    specific_heat: float | None = None
    conductivity_slope: float = 0.0
    reference_temperature: float = 300.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise MaterialError(f"material name must be a non-empty string, got {self.name!r}")
        require_positive("thermal_conductivity", self.thermal_conductivity)
        if self.density is not None:
            require_positive("density", self.density)
        if self.specific_heat is not None:
            require_positive("specific_heat", self.specific_heat)
        require_positive("reference_temperature", self.reference_temperature)

    @property
    def k(self) -> float:
        """Shorthand for :attr:`thermal_conductivity`."""
        return self.thermal_conductivity

    @property
    def volumetric_heat_capacity(self) -> float:
        """ρ·cp in J/(m³·K).

        Raises
        ------
        MaterialError
            If density or specific heat were not provided.
        """
        if self.density is None or self.specific_heat is None:
            raise MaterialError(
                f"material {self.name!r} has no density/specific-heat data; "
                "transient analysis needs both"
            )
        return self.density * self.specific_heat

    def conductivity_at(self, temperature: float) -> float:
        """k(T) with the linear temperature model, clipped to stay positive.

        Parameters
        ----------
        temperature:
            Absolute temperature in kelvin.
        """
        require_positive("temperature", temperature)
        k = self.thermal_conductivity + self.conductivity_slope * (
            temperature - self.reference_temperature
        )
        if k <= 0.0:
            raise MaterialError(
                f"material {self.name!r} extrapolates to non-positive conductivity "
                f"at T = {temperature} K"
            )
        return k

    def with_conductivity(self, k: float, *, name: str | None = None) -> "Material":
        """Return a copy with a different conductivity (e.g. an effective kD)."""
        require_non_negative("k", k)
        return replace(self, thermal_conductivity=k, name=name or self.name)
