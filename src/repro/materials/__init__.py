"""Materials: the :class:`Material` type, a standard library and
effective-medium helpers."""

from .effective import (
    effective_ild_conductivity,
    maxwell_eucken,
    parallel_bound,
    series_bound,
)
from .library import (
    ALUMINIUM,
    BCB,
    COPPER,
    POLYIMIDE,
    SILICON,
    SILICON_DIOXIDE,
    TUNGSTEN,
    get,
    names,
    register,
)
from .material import Material

__all__ = [
    "Material",
    "get",
    "names",
    "register",
    "SILICON",
    "SILICON_DIOXIDE",
    "COPPER",
    "POLYIMIDE",
    "TUNGSTEN",
    "ALUMINIUM",
    "BCB",
    "effective_ild_conductivity",
    "maxwell_eucken",
    "parallel_bound",
    "series_bound",
]
