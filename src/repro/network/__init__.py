"""Generic thermal resistance network substrate.

Model A, Model B and the 1-D baseline are all assembled as
:class:`ThermalCircuit` instances and solved through the same KCL stamping
machinery the paper's Eqs. (1)–(6) and (17)–(19) describe.
"""

from .circuit import NetworkSolution, ThermalCircuit
from .elements import GROUND, Capacitor, HeatSource, Resistor
from .graph import dominant_paths, effective_resistance, to_networkx
from .transient import (
    TransientResult,
    pulse_train_scales,
    step_response,
    time_constants,
    transient_lhs,
)

__all__ = [
    "GROUND",
    "Resistor",
    "HeatSource",
    "Capacitor",
    "ThermalCircuit",
    "NetworkSolution",
    "to_networkx",
    "effective_resistance",
    "dominant_paths",
    "TransientResult",
    "pulse_train_scales",
    "step_response",
    "time_constants",
    "transient_lhs",
]
