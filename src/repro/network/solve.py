"""Linear-system back-ends for thermal networks.

Small systems (Model A: a handful of nodes) use a dense LAPACK solve;
large systems (Model B with hundreds of π-segments, FVM grids) use
scipy.sparse.  :func:`solve_linear_system` picks automatically.

The sparse direct path factorises with SuperLU through the global
:data:`repro.perf.factor_cache`: solving the same matrix again (transient
stepping, duplicated sweep points) reuses the factor and pays only the
triangular solves.  Factorisation is deterministic, so cached and fresh
solves produce identical results.  :func:`factorized_solver` exposes the
same machinery for callers that solve one matrix against many right-hand
sides.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SingularNetworkError, SolverError
from ..perf import factor_cache, increment

#: below this many unknowns a dense solve is faster than sparse setup
DENSE_CUTOFF = 200


def solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a dense SPD-ish system, raising library errors on failure."""
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularNetworkError(
            "conductance matrix is singular — some node has no path to ground"
        ) from exc


#: above this many unknowns, prefer preconditioned CG over direct solve
#: (SuperLU remains faster than ILU+CG for the moderately sized 3-D grids
#: used here; CG is the safety net against fill-in blow-up on huge grids)
ITERATIVE_CUTOFF = 150_000


def _as_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """CSR view of a sparse matrix without copying when already CSR."""
    if isinstance(matrix, sp.csr_matrix):
        return matrix
    return matrix.tocsr()


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve a sparse SPD system.

    Direct factorisation (SuperLU, cached) up to :data:`ITERATIVE_CUTOFF`
    unknowns; beyond that, conjugate gradients with an incomplete-LU
    preconditioner — the conductance matrices here are symmetric positive
    definite, for which CG is the method of choice and avoids 3-D fill-in
    blow-up.
    """
    csr = _as_csr(matrix)
    n = rhs.shape[0]
    if n > ITERATIVE_CUTOFF:
        solution = _solve_cg(csr, rhs)
        if solution is not None:
            return solution
    try:
        solution = factor_cache.solver(csr)(rhs)
    except RuntimeError as exc:  # superlu signals singularity this way
        raise SingularNetworkError(
            "sparse conductance matrix is singular — some node has no path to ground"
        ) from exc
    arr = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise SolverError("sparse solve produced non-finite temperatures")
    return arr


def _solve_cg(csr: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray | None:
    """Preconditioned CG; returns None to fall back to the direct solver."""
    try:
        ilu = spla.spilu(csr.tocsc(), drop_tol=1e-5, fill_factor=8.0)
    except RuntimeError as exc:
        increment("cg_ilu_fallbacks")
        warnings.warn(
            f"ILU preconditioner failed ({exc}); falling back to the direct "
            "sparse solver",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    preconditioner = spla.LinearOperator(csr.shape, ilu.solve)
    solution, info = spla.cg(
        csr, rhs, rtol=1e-10, atol=0.0, maxiter=2000, M=preconditioner
    )
    if info != 0 or not np.all(np.isfinite(solution)):
        increment("cg_convergence_fallbacks")
        warnings.warn(
            f"preconditioned CG did not converge (info={info}); falling back "
            "to the direct sparse solver",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return np.asarray(solution, dtype=float)


def factorized_solver(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """A reusable ``solve(rhs)`` for repeated solves against one matrix.

    Dispatches like :func:`solve_linear_system` (dense LAPACK LU below
    :data:`DENSE_CUTOFF` unknowns, SuperLU above) but factorises exactly
    once, through the global factor cache.  Transient stepping uses this
    to turn n_steps full solves into one factorisation plus n_steps
    back-substitutions.

    Every returned solve applies the same finite-temperature guard as
    :func:`solve_sparse`: a numerically singular factor that slips past
    the factorisation (SuperLU can produce inf/nan instead of raising)
    raises :class:`~repro.errors.SolverError` instead of silently
    propagating non-finite values through transient stepping.
    """
    n = matrix.shape[0]
    try:
        if sp.issparse(matrix):
            if n <= DENSE_CUTOFF:
                solve = factor_cache.solver(matrix.toarray())
            else:
                solve = factor_cache.solver(_as_csr(matrix))
        else:
            solve = factor_cache.solver(np.asarray(matrix, dtype=float))
    except RuntimeError as exc:
        raise SingularNetworkError(
            "matrix is singular — some node has no path to ground"
        ) from exc

    def checked_solve(rhs: np.ndarray) -> np.ndarray:
        arr = np.asarray(solve(rhs), dtype=float)
        if not np.all(np.isfinite(arr)):
            raise SolverError("factorized solve produced non-finite temperatures")
        return arr

    return checked_solve


def solve_linear_system(matrix, rhs: np.ndarray) -> np.ndarray:
    """Dispatch to the dense or sparse back-end based on system size."""
    n = rhs.shape[0]
    if sp.issparse(matrix):
        if n <= DENSE_CUTOFF:
            return solve_dense(matrix.toarray(), rhs)
        return solve_sparse(matrix, rhs)
    if n <= DENSE_CUTOFF:
        return solve_dense(np.asarray(matrix, dtype=float), rhs)
    return solve_sparse(sp.csr_matrix(matrix), rhs)
