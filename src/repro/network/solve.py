"""Linear-system back-ends for thermal networks.

Small systems (Model A: a handful of nodes) use a dense LAPACK solve;
large systems (Model B with hundreds of π-segments, FVM grids) use
scipy.sparse.  :func:`solve_linear_system` picks automatically.

The sparse direct path factorises with SuperLU through the global
:data:`repro.perf.factor_cache`: solving the same matrix again (transient
stepping, duplicated sweep points) reuses the factor and pays only the
triangular solves.  Factorisation is deterministic, so cached and fresh
solves produce identical results.  :func:`factorized_solver` exposes the
same machinery for callers that solve one matrix against many right-hand
sides.

Multi-RHS entry points (:func:`solve_sparse_multi`,
:func:`solve_dense_multi`, :func:`solve_linear_system_multi`) solve one
matrix against an ``(n, k)`` block of right-hand sides: the matrix is
factorised exactly once and each column is back-substituted through the
shared factor.  Columns are solved *individually* (not as one BLAS block
solve) on purpose — blocked triangular solves reorder floating-point
operations, and the matrix-batched execution plane requires column ``j``
of a batched solve to be bit-for-bit identical to the corresponding
single-RHS solve.  The finite-temperature guard is applied column-wise,
naming the offending columns.

Stacked entry points (:func:`solve_dense_stacked`,
:func:`solve_sparse_stacked`) solve *many independent systems* at once —
the tier below multi-RHS: ``m`` different matrices with one RHS each,
hoisted into a single ``(m, n, n)`` batched LAPACK call (dense) or one
block-diagonal SuperLU factorisation (sparse).  The dense path is
bit-for-bit identical per item to :func:`solve_dense`; guards name the
offending stacked item.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import SingularNetworkError, SolverError
from ..perf import factor_cache, increment

#: below this many unknowns a dense solve is faster than sparse setup
DENSE_CUTOFF = 200


def solve_dense(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a dense SPD-ish system, raising library errors on failure."""
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularNetworkError(
            "conductance matrix is singular — some node has no path to ground"
        ) from exc


#: above this many unknowns, prefer preconditioned CG over direct solve
#: (SuperLU remains faster than ILU+CG for the moderately sized 3-D grids
#: used here; CG is the safety net against fill-in blow-up on huge grids)
ITERATIVE_CUTOFF = 150_000


def _as_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """CSR view of a sparse matrix without copying when already CSR."""
    if isinstance(matrix, sp.csr_matrix):
        return matrix
    return matrix.tocsr()


def solve_sparse(
    matrix: sp.spmatrix, rhs: np.ndarray, *, permc_spec: str | None = None
) -> np.ndarray:
    """Solve a sparse SPD system.

    Direct factorisation (SuperLU, cached) up to :data:`ITERATIVE_CUTOFF`
    unknowns; beyond that, conjugate gradients with an incomplete-LU
    preconditioner — the conductance matrices here are symmetric positive
    definite, for which CG is the method of choice and avoids 3-D fill-in
    blow-up.

    ``permc_spec`` overrides SuperLU's column ordering (default COLAMD).
    Callers whose solves must slot bit-for-bit into the block-diagonal
    stacked tier (:func:`solve_sparse_stacked`) pass ``"NATURAL"`` so solo
    and stacked factors agree exactly.
    """
    csr = _as_csr(matrix)
    n = rhs.shape[0]
    if n > ITERATIVE_CUTOFF:
        solution = _solve_cg(csr, rhs)
        if solution is not None:
            return solution
    try:
        solution = factor_cache.solver(csr, permc_spec)(rhs)
    except RuntimeError as exc:  # superlu signals singularity this way
        raise SingularNetworkError(
            "sparse conductance matrix is singular — some node has no path to ground"
        ) from exc
    arr = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise SolverError("sparse solve produced non-finite temperatures")
    return arr


def _cg_preconditioner(csr: sp.csr_matrix) -> spla.LinearOperator | None:
    """ILU preconditioner for CG, or None to fall back to the direct solver.

    Building the preconditioner is deterministic, so one preconditioner
    shared across a block of right-hand sides yields the same iterates as
    rebuilding it per solve — the multi-RHS path relies on this.
    """
    try:
        ilu = spla.spilu(csr.tocsc(), drop_tol=1e-5, fill_factor=8.0)
    except RuntimeError as exc:
        increment("cg_ilu_fallbacks")
        warnings.warn(
            f"ILU preconditioner failed ({exc}); falling back to the direct "
            "sparse solver",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return spla.LinearOperator(csr.shape, ilu.solve)


def _cg_iterate(
    csr: sp.csr_matrix, rhs: np.ndarray, preconditioner: spla.LinearOperator
) -> np.ndarray | None:
    """One preconditioned CG solve; None means fall back to direct."""
    solution, info = spla.cg(
        csr, rhs, rtol=1e-10, atol=0.0, maxiter=2000, M=preconditioner
    )
    if info != 0 or not np.all(np.isfinite(solution)):
        increment("cg_convergence_fallbacks")
        warnings.warn(
            f"preconditioned CG did not converge (info={info}); falling back "
            "to the direct sparse solver",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    return np.asarray(solution, dtype=float)


def _solve_cg(csr: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray | None:
    """Preconditioned CG; returns None to fall back to the direct solver."""
    preconditioner = _cg_preconditioner(csr)
    if preconditioner is None:
        return None
    return _cg_iterate(csr, rhs, preconditioner)


def _check_finite_columns(solution: np.ndarray, what: str) -> np.ndarray:
    """Column-wise finite-temperature guard shared by the multi-RHS paths."""
    arr = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(arr)):
        if arr.ndim == 1:
            raise SolverError(f"{what} produced non-finite temperatures")
        bad = sorted(np.nonzero(~np.isfinite(arr).all(axis=0))[0].tolist())
        raise SolverError(
            f"{what} produced non-finite temperatures in RHS column(s) {bad}"
        )
    return arr


def _check_finite_items(solution: np.ndarray, what: str) -> np.ndarray:
    """Item-wise finite-temperature guard for the stacked-solve paths.

    ``solution`` is ``(m, n)`` — one row per stacked system.  Non-finite
    temperatures name the offending item indices so a degraded re-dispatch
    (or a human) can find the bad point.
    """
    arr = np.asarray(solution, dtype=float)
    if not np.all(np.isfinite(arr)):
        bad = sorted(
            np.nonzero(~np.isfinite(arr.reshape(arr.shape[0], -1)).all(axis=1))[
                0
            ].tolist()
        )
        raise SolverError(
            f"{what} produced non-finite temperatures in stacked item(s) {bad}"
        )
    return arr


def solve_dense_stacked(matrices: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``m`` independent dense systems in one batched LAPACK call.

    ``matrices`` is ``(m, n, n)``, ``rhs`` is ``(m, n)``; row ``i`` of the
    result solves ``matrices[i] @ x = rhs[i]``.  numpy broadcasts the solve
    through the same ``gesv`` gufunc a single :func:`solve_dense` call
    uses, so each row is bit-for-bit identical to
    ``solve_dense(matrices[i], rhs[i])`` — the stacked execution tier
    relies on this (asserted by the identity tests).

    A singular item fails the whole batched call, so on failure each item
    is probed individually to *name* the singular point(s); a non-finite
    row likewise names its item.
    """
    stack = np.asarray(matrices, dtype=float)
    block = np.asarray(rhs, dtype=float)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise SolverError(
            f"stacked dense solves need an (m, n, n) matrix stack, got "
            f"shape {stack.shape}"
        )
    if block.shape != stack.shape[:2]:
        raise SolverError(
            f"stacked dense solves need an (m, n) RHS stack matching the "
            f"matrices, got {block.shape} against {stack.shape}"
        )
    if stack.shape[0] == 0:
        return block.copy()
    try:
        # rhs must broadcast as a stack of column vectors: (m, n) -> (m, n, 1)
        solution = np.linalg.solve(stack, block[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        bad = []
        for i in range(stack.shape[0]):
            try:
                np.linalg.solve(stack[i], block[i])
            except np.linalg.LinAlgError:
                bad.append(i)
        raise SingularNetworkError(
            f"conductance matrix is singular in stacked item(s) {bad} — "
            "some node has no path to ground"
        ) from exc
    return _check_finite_items(solution, "stacked dense solve")


def solve_sparse_stacked(
    matrices: Sequence[sp.spmatrix], rhs_list: Sequence[np.ndarray]
) -> list[np.ndarray]:
    """Solve independent sparse systems through one block-diagonal factor.

    The systems are assembled into one ``scipy.sparse.block_diag`` matrix
    and factorised by a single SuperLU call with *natural* ordering
    (``permc_spec="NATURAL"``): the block-diagonal structure makes natural
    ordering batch-size invariant — item ``i``'s slice of the solution is
    identical whether it is factorised alone or inside any batch — which
    the identity tests assert.  (The default COLAMD ordering is *not*
    batch-size invariant, and natural ordering differs from
    :func:`solve_sparse`'s COLAMD factor in the last ulps, so this path
    trades exact equality with the solo sparse path for batch-size
    invariance; use it where the batch itself is the reference.)

    A singular item fails the combined factorisation, so on failure each
    item is factorised individually to name the singular point(s); the
    finite-temperature guard likewise names bad items.
    """
    mats = [_as_csr(m) for m in matrices]
    if len(mats) != len(rhs_list):
        raise SolverError(
            f"stacked sparse solves need matching matrices and RHS lists, "
            f"got {len(mats)} matrices against {len(rhs_list)} RHS"
        )
    if not mats:
        return []
    sizes = [m.shape[0] for m in mats]
    for i, (m, b) in enumerate(zip(mats, rhs_list)):
        if m.shape[0] != m.shape[1] or np.shape(b) != (m.shape[0],):
            raise SolverError(
                f"stacked item {i} is not a square system with a matching "
                f"RHS: matrix {m.shape}, rhs {np.shape(b)}"
            )
    block = sp.block_diag(mats, format="csc")
    try:
        lu = spla.splu(block, permc_spec="NATURAL")
    except RuntimeError as exc:
        bad = []
        for i, m in enumerate(mats):
            try:
                spla.splu(m.tocsc(), permc_spec="NATURAL")
            except RuntimeError:
                bad.append(i)
        raise SingularNetworkError(
            f"sparse conductance matrix is singular in stacked item(s) "
            f"{bad} — some node has no path to ground"
        ) from exc
    joined = lu.solve(np.concatenate([np.asarray(b, dtype=float) for b in rhs_list]))
    offsets = np.cumsum([0] + sizes)
    out = []
    for i in range(len(mats)):
        piece = np.asarray(joined[offsets[i] : offsets[i + 1]], dtype=float)
        if not np.all(np.isfinite(piece)):
            raise SolverError(
                f"stacked sparse solve produced non-finite temperatures in "
                f"stacked item(s) [{i}]"
            )
        out.append(piece)
    return out


def _as_rhs_block(rhs_block: np.ndarray) -> np.ndarray:
    block = np.asarray(rhs_block, dtype=float)
    if block.ndim != 2:
        raise SolverError(
            f"multi-RHS solves need an (n, k) block, got shape {block.shape}"
        )
    return block


def solve_sparse_multi(
    matrix: sp.spmatrix,
    rhs_block: np.ndarray,
    *,
    permc_spec: str | None = None,
) -> np.ndarray:
    """Solve a sparse SPD system against an ``(n, k)`` RHS block.

    One SuperLU factorisation (through the global factor cache) plus one
    back-substitution per column; column ``j`` of the result is bit-for-bit
    identical to ``solve_sparse(matrix, rhs_block[:, j])`` under the same
    ``permc_spec`` (see :func:`solve_sparse`).  Above
    :data:`ITERATIVE_CUTOFF` unknowns the ILU preconditioner is built once
    and shared across the per-column CG solves (identical iterates);
    columns that fail to converge fall back to the shared direct factor,
    exactly as their single-RHS counterparts would.
    """
    block = _as_rhs_block(rhs_block)
    csr = _as_csr(matrix)
    n, k = block.shape
    if k == 0:
        return block.copy()
    columns: list[np.ndarray | None] = [None] * k
    if n > ITERATIVE_CUTOFF:
        preconditioner = _cg_preconditioner(csr)
        if preconditioner is not None:
            for j in range(k):
                columns[j] = _cg_iterate(csr, block[:, j], preconditioner)
    if any(c is None for c in columns):
        try:
            solve = factor_cache.solver(csr, permc_spec)
        except RuntimeError as exc:
            raise SingularNetworkError(
                "sparse conductance matrix is singular — some node has no "
                "path to ground"
            ) from exc
        for j in range(k):
            if columns[j] is None:
                columns[j] = solve(block[:, j])
    return _check_finite_columns(np.column_stack(columns), "sparse solve")


def solve_dense_multi(matrix: np.ndarray, rhs_block: np.ndarray) -> np.ndarray:
    """Solve a dense system against an ``(n, k)`` RHS block.

    One LAPACK LU factorisation (through the global factor cache) plus one
    per-column back-substitution.  ``getrf``+``getrs`` on a single column
    is the same computation :func:`solve_dense` performs via
    ``numpy.linalg.solve`` (``gesv``), so columns match their single-RHS
    solves bit-for-bit when numpy and scipy resolve to the same LAPACK
    build (asserted by the identity tests on this environment; on split
    BLAS installs the columns may differ in the last ulp).  The sparse
    path — the one the FEM matrix groups actually use — carries the
    unconditional guarantee: both sides share one cached SuperLU factor.
    """
    block = _as_rhs_block(rhs_block)
    if block.shape[1] == 0:
        return block.copy()
    try:
        solve = factor_cache.solver(np.asarray(matrix, dtype=float))
    except RuntimeError as exc:
        raise SingularNetworkError(
            "conductance matrix is singular — some node has no path to ground"
        ) from exc
    columns = [solve(block[:, j]) for j in range(block.shape[1])]
    return _check_finite_columns(np.column_stack(columns), "dense solve")


def solve_linear_system_multi(matrix, rhs_block: np.ndarray) -> np.ndarray:
    """Dispatch an ``(n, k)`` RHS block to the dense or sparse back-end."""
    block = _as_rhs_block(rhs_block)
    n = block.shape[0]
    if sp.issparse(matrix):
        if n <= DENSE_CUTOFF:
            return solve_dense_multi(matrix.toarray(), block)
        return solve_sparse_multi(matrix, block)
    if n <= DENSE_CUTOFF:
        return solve_dense_multi(np.asarray(matrix, dtype=float), block)
    return solve_sparse_multi(sp.csr_matrix(matrix), block)


def factorized_solver(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """A reusable ``solve(rhs)`` for repeated solves against one matrix.

    Dispatches like :func:`solve_linear_system` (dense LAPACK LU below
    :data:`DENSE_CUTOFF` unknowns, SuperLU above) but factorises exactly
    once, through the global factor cache.  Transient stepping uses this
    to turn n_steps full solves into one factorisation plus n_steps
    back-substitutions.

    The returned solve also accepts an ``(n, k)`` RHS block (SuperLU and
    LAPACK back-substitute blocks natively); note that blocked triangular
    solves are *not* bit-identical to per-column solves — callers that
    need column-exact identity with single-RHS solves use
    :func:`solve_linear_system_multi` instead.

    Every returned solve applies the same finite-temperature guard as
    :func:`solve_sparse`, column-wise for RHS blocks: a numerically
    singular factor that slips past the factorisation (SuperLU can
    produce inf/nan instead of raising) raises
    :class:`~repro.errors.SolverError` instead of silently propagating
    non-finite values through transient stepping.
    """
    n = matrix.shape[0]
    try:
        if sp.issparse(matrix):
            if n <= DENSE_CUTOFF:
                solve = factor_cache.solver(matrix.toarray())
            else:
                solve = factor_cache.solver(_as_csr(matrix))
        else:
            solve = factor_cache.solver(np.asarray(matrix, dtype=float))
    except RuntimeError as exc:
        raise SingularNetworkError(
            "matrix is singular — some node has no path to ground"
        ) from exc

    def checked_solve(rhs: np.ndarray) -> np.ndarray:
        return _check_finite_columns(solve(rhs), "factorized solve")

    return checked_solve


def solve_linear_system(matrix, rhs: np.ndarray) -> np.ndarray:
    """Dispatch to the dense or sparse back-end based on system size."""
    n = rhs.shape[0]
    if sp.issparse(matrix):
        if n <= DENSE_CUTOFF:
            return solve_dense(matrix.toarray(), rhs)
        return solve_sparse(matrix, rhs)
    if n <= DENSE_CUTOFF:
        return solve_dense(np.asarray(matrix, dtype=float), rhs)
    return solve_sparse(sp.csr_matrix(matrix), rhs)
