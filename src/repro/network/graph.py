"""Graph-level analysis of thermal circuits via networkx.

These helpers are not needed to reproduce the paper's numbers, but they make
the compact models inspectable: export a circuit as a weighted graph, compute
the effective (Thevenin) resistance between two nodes, and enumerate the
dominant heat paths — the paper's "path 1 / path 2 / path 3" of Fig. 1(b)
fall out of :func:`dominant_paths` on Model A's network.
"""

from __future__ import annotations

import networkx as nx

from ..errors import NetworkError
from .circuit import ThermalCircuit
from .elements import GROUND, NodeId


def to_networkx(circuit: ThermalCircuit) -> nx.MultiGraph:
    """Export a circuit as a multigraph with ``resistance`` edge weights."""
    graph = nx.MultiGraph()
    graph.add_node(GROUND)
    graph.add_nodes_from(circuit.nodes)
    for r in circuit.resistors:
        graph.add_edge(r.node_a, r.node_b, resistance=r.resistance, label=r.label)
    return graph


def effective_resistance(
    circuit: ThermalCircuit, node_a: NodeId, node_b: NodeId = GROUND
) -> float:
    """Thevenin thermal resistance between two nodes, K/W.

    Injects 1 W at ``node_a``, extracts it at ``node_b`` and reads the
    temperature difference — the standard two-point resistance.
    """
    if node_a == node_b:
        raise NetworkError("effective resistance of a node to itself is zero")
    probe = ThermalCircuit()
    for r in circuit.resistors:
        probe.add_resistor(r.node_a, r.node_b, r.resistance, label=r.label)
    probe.add_source(node_a, 1.0, label="probe+")
    if node_b != GROUND:
        probe.add_source(node_b, -1.0, label="probe-")
    solution = probe.solve()
    return solution[node_a] - solution[node_b]


def dominant_paths(
    circuit: ThermalCircuit, source: NodeId, limit: int = 3
) -> list[tuple[list[NodeId], float]]:
    """The ``limit`` lowest-resistance simple paths from ``source`` to ground.

    Each path's figure of merit is the *series* sum of its edge resistances
    (parallel edges between the same node pair are merged first).  Returns
    ``(path, series_resistance)`` tuples, best first.
    """
    graph = nx.Graph()
    graph.add_node(GROUND)
    graph.add_nodes_from(circuit.nodes)
    for r in circuit.resistors:
        if graph.has_edge(r.node_a, r.node_b):
            existing = graph[r.node_a][r.node_b]["resistance"]
            merged = 1.0 / (1.0 / existing + 1.0 / r.resistance)
            graph[r.node_a][r.node_b]["resistance"] = merged
        else:
            graph.add_edge(r.node_a, r.node_b, resistance=r.resistance)
    if source not in graph:
        raise NetworkError(f"no node {source!r} in the circuit")
    paths = nx.shortest_simple_paths(graph, source, GROUND, weight="resistance")
    out: list[tuple[list[NodeId], float]] = []
    for path in paths:
        total = sum(
            graph[a][b]["resistance"] for a, b in zip(path, path[1:])
        )
        out.append((list(path), total))
        if len(out) >= limit:
            break
    return out
