"""The :class:`ThermalCircuit` builder and its steady-state solution.

Both analytical models of the paper (and the 1-D baseline) are assembled on
top of this class: nodes are created implicitly by referencing them from
resistors/sources, the ground node is the heat sink, and ``solve()`` stamps
the nodal conductance matrix (KCL) and solves G·ΔT = q.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from ..errors import NetworkError
from .elements import GROUND, Capacitor, HeatSource, NodeId, Resistor
from .solve import solve_linear_system


@dataclass(frozen=True)
class NetworkSolution:
    """Steady-state node temperature rises above the ground node.

    Access temperatures with item syntax: ``solution["bulk2"]``; the ground
    node always reads 0.
    """

    temperatures: dict[NodeId, float]
    circuit: "ThermalCircuit"

    def __getitem__(self, node: NodeId) -> float:
        if node == GROUND:
            return 0.0
        try:
            return self.temperatures[node]
        except KeyError:
            raise NetworkError(f"no node {node!r} in the solved circuit") from None

    @property
    def max_rise(self) -> float:
        """Largest temperature rise in the network, K."""
        return max(self.temperatures.values(), default=0.0)

    @property
    def hottest_node(self) -> NodeId:
        """The node with the largest rise."""
        if not self.temperatures:
            raise NetworkError("empty network has no hottest node")
        return max(self.temperatures, key=self.temperatures.__getitem__)

    def heat_flow(self, node_a: NodeId, node_b: NodeId) -> float:
        """Net heat (W) flowing from ``node_a`` to ``node_b`` through all
        resistors that directly connect them."""
        pair = {node_a, node_b}
        g_total = sum(
            r.conductance
            for r in self.circuit.resistor_adjacency().get(node_a, ())
            if {r.node_a, r.node_b} == pair
        )
        if g_total == 0.0:
            raise NetworkError(f"no resistor connects {node_a!r} and {node_b!r}")
        return (self[node_a] - self[node_b]) * g_total

    def sink_heat(self) -> float:
        """Total heat (W) flowing into the ground node; equals Σ sources
        at steady state (energy conservation)."""
        total = 0.0
        for r in self.circuit.resistor_adjacency().get(GROUND, ()):
            other = r.node_b if r.node_a == GROUND else r.node_a
            total += (self[other] - 0.0) * r.conductance
        return total


class ThermalCircuit:
    """A mutable thermal resistance network with a single ground node."""

    def __init__(self) -> None:
        self.resistors: list[Resistor] = []
        self.sources: list[HeatSource] = []
        self.capacitors: list[Capacitor] = []
        self._nodes: dict[NodeId, int] = {}
        # node -> incident resistors, rebuilt lazily when resistors change
        self._adjacency: dict[NodeId, tuple[Resistor, ...]] | None = None
        self._adjacency_marker: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _touch(self, node: NodeId) -> None:
        if node != GROUND and node not in self._nodes:
            self._nodes[node] = len(self._nodes)

    def add_resistor(
        self, node_a: NodeId, node_b: NodeId, resistance: float, *, label: str = ""
    ) -> Resistor:
        """Add a resistor (K/W) between two nodes, creating them if new."""
        r = Resistor(node_a, node_b, resistance, label)
        self._touch(node_a)
        self._touch(node_b)
        self.resistors.append(r)
        return r

    def add_source(self, node: NodeId, power: float, *, label: str = "") -> HeatSource:
        """Inject ``power`` watts into ``node``."""
        s = HeatSource(node, power, label)
        self._touch(node)
        self.sources.append(s)
        return s

    def add_capacitor(
        self, node: NodeId, capacitance: float, *, label: str = ""
    ) -> Capacitor:
        """Attach a thermal capacitance (J/K) to ``node`` (transient only)."""
        c = Capacitor(node, capacitance, label)
        self._touch(node)
        self.capacitors.append(c)
        return c

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[NodeId]:
        """All non-ground nodes in insertion order."""
        return list(self._nodes)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def node_index(self, node: NodeId) -> int:
        """Matrix row/column of a node."""
        try:
            return self._nodes[node]
        except KeyError:
            raise NetworkError(f"no node {node!r} in the circuit") from None

    def resistor_adjacency(self) -> dict[NodeId, tuple[Resistor, ...]]:
        """Node → incident resistors index (built once, reused until the
        resistor list changes).

        Replaces the O(n_resistors) set-building linear scans that
        :meth:`NetworkSolution.heat_flow` / :meth:`NetworkSolution.sink_heat`
        used to run per query.  Validity is tracked by a hash of the
        resistor *identities* (Resistor itself is frozen), so any mutation
        of the public ``resistors`` list — append, removal, or in-place
        replacement — triggers a rebuild.
        """
        marker = hash(tuple(map(id, self.resistors)))
        if self._adjacency is None or self._adjacency_marker != marker:
            index: dict[NodeId, list[Resistor]] = {}
            for r in self.resistors:
                index.setdefault(r.node_a, []).append(r)
                if r.node_b != r.node_a:
                    index.setdefault(r.node_b, []).append(r)
            self._adjacency = {n: tuple(rs) for n, rs in index.items()}
            self._adjacency_marker = marker
        return self._adjacency

    def validate(self) -> None:
        """Check the network is solvable: non-empty and fully grounded.

        Every node must reach :data:`GROUND` through resistors, otherwise
        the conductance matrix is singular.
        """
        if not self._nodes:
            raise NetworkError("circuit has no nodes")
        # BFS from ground over the resistor adjacency
        adjacency = self.resistor_adjacency()
        seen = {GROUND}
        frontier = [GROUND]
        while frontier:
            current = frontier.pop()
            for r in adjacency.get(current, ()):
                nb = r.node_b if r.node_a == current else r.node_a
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        floating = [n for n in self._nodes if n not in seen]
        if floating:
            raise NetworkError(
                f"{len(floating)} node(s) have no path to ground, e.g. {floating[0]!r}"
            )

    # ------------------------------------------------------------------
    # assembly and solve
    # ------------------------------------------------------------------
    def conductance_matrix(self, *, sparse: bool | None = None):
        """The KCL nodal conductance matrix G (ground eliminated).

        Parameters
        ----------
        sparse:
            Force sparse (True) or dense (False) output; ``None`` picks
            sparse for > 200 nodes.
        """
        n = self.n_nodes
        if sparse is None:
            sparse = n > 200
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        for r in self.resistors:
            g = r.conductance
            ia = None if r.node_a == GROUND else self._nodes[r.node_a]
            ib = None if r.node_b == GROUND else self._nodes[r.node_b]
            if ia is not None:
                rows.append(ia)
                cols.append(ia)
                vals.append(g)
            if ib is not None:
                rows.append(ib)
                cols.append(ib)
                vals.append(g)
            if ia is not None and ib is not None:
                rows.extend((ia, ib))
                cols.extend((ib, ia))
                vals.extend((-g, -g))
        matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        if sparse:
            return matrix
        return matrix.toarray()

    def source_vector(self) -> np.ndarray:
        """The heat-injection vector q aligned with :attr:`nodes`."""
        q = np.zeros(self.n_nodes)
        for s in self.sources:
            q[self._nodes[s.node]] += s.power
        return q

    def assemble(self):
        """Validate and return ``(matrix, source_vector)`` without solving.

        The stacked execution tier uses this to lift a circuit's system
        out for a batched cross-matrix solve; the matrix is exactly what
        :meth:`solve` would assemble (same sparse/dense policy).
        """
        self.validate()  # also primes the node→resistor adjacency index
        return self.conductance_matrix(), self.source_vector()

    def solution_from(self, temps: np.ndarray) -> NetworkSolution:
        """Wrap an externally solved temperature vector, as :meth:`solve` would."""
        return NetworkSolution(
            temperatures={node: float(temps[i]) for node, i in self._nodes.items()},
            circuit=self,
        )

    def solve(self) -> NetworkSolution:
        """Solve G·ΔT = q and return node temperature rises."""
        self.validate()  # also primes the node→resistor adjacency index
        matrix = self.conductance_matrix()
        temps = solve_linear_system(matrix, self.source_vector())
        return NetworkSolution(
            temperatures={node: float(temps[i]) for node, i in self._nodes.items()},
            circuit=self,
        )

    def solve_many(self, sources: list[np.ndarray]) -> list[NetworkSolution]:
        """Solve G·ΔT = q for many source vectors against one factorization.

        The conductance matrix is assembled and factorised once
        (:func:`~repro.network.solve.solve_linear_system_multi`); each
        source vector costs one back-substitution, and column ``j`` is
        bit-for-bit identical to ``solve()`` with that source — Model B's
        matrix-group dispatch relies on this.  All returned solutions
        reference *this* circuit (whose own sources may correspond to any
        one of the vectors).
        """
        from .solve import solve_linear_system_multi

        if not sources:
            return []
        self.validate()
        matrix = self.conductance_matrix()
        temps = solve_linear_system_multi(matrix, np.column_stack(sources))
        return [
            NetworkSolution(
                temperatures={
                    node: float(temps[i, j]) for node, i in self._nodes.items()
                },
                circuit=self,
            )
            for j in range(len(sources))
        ]
