"""Primitive elements of a thermal resistance network.

The electrothermal duality the paper invokes maps heat flow (W) to current,
temperature (K) to voltage and thermal resistance (K/W) to electrical
resistance.  Elements reference nodes by hashable ids (strings throughout
this library); :data:`GROUND` is the reserved id of the isothermal
reference node (the heat-sink face in the paper's models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..errors import NetworkError
from ..units import require_non_negative, require_positive

#: Reserved id of the reference (heat-sink) node, held at ΔT = 0.
GROUND: str = "__ground__"

NodeId = Hashable


@dataclass(frozen=True, slots=True)
class Resistor:
    """A thermal resistor between two nodes.

    ``resistance`` is in K/W and must be positive (a zero-resistance link
    should be expressed by merging nodes instead).
    """

    node_a: NodeId
    node_b: NodeId
    resistance: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise NetworkError(f"resistor {self.label!r} connects a node to itself")
        require_positive(f"resistance {self.label!r}", self.resistance)

    @property
    def conductance(self) -> float:
        """1/R in W/K."""
        return 1.0 / self.resistance


@dataclass(frozen=True, slots=True)
class HeatSource:
    """A heat source injecting ``power`` watts into ``node``.

    Negative power (heat removal) is allowed for modelling local cooling.
    """

    node: NodeId
    power: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.node == GROUND:
            raise NetworkError("injecting heat directly into the ground node is a no-op")
        if not isinstance(self.power, (int, float)):
            raise NetworkError(f"power of source {self.label!r} must be a number")


@dataclass(frozen=True, slots=True)
class Capacitor:
    """A thermal capacitance (J/K) from ``node`` to ground.

    Used only by the transient extension; steady-state solves ignore it.
    """

    node: NodeId
    capacitance: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.node == GROUND:
            raise NetworkError("a capacitance on the ground node has no effect")
        require_non_negative(f"capacitance {self.label!r}", self.capacitance)
