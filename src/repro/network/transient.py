"""Transient RC analysis of thermal networks (extension beyond the paper).

The paper's models are steady-state.  Attaching thermal capacitances
(C = ρ·cp·V) to the network nodes turns G·ΔT = q into
C·dΔT/dt + G·ΔT = q(t), which this module integrates with the
unconditionally stable backward-Euler scheme.  This is the standard
compact-transient extension and lets users ask, e.g., how fast a TTSV pulls
a power spike down.

Nodes without an explicit capacitance are treated as massless (their
equations stay algebraic), which backward Euler handles naturally.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp

from ..errors import SolverError, ValidationError
from ..units import require_positive, require_positive_int
from .circuit import ThermalCircuit
from .elements import NodeId
from .solve import factorized_solver


@dataclass(frozen=True)
class TransientResult:
    """Node temperature rises over time.

    ``temperatures[k, i]`` is node ``nodes[i]`` at ``times[k]``.
    """

    times: np.ndarray
    temperatures: np.ndarray
    nodes: list[NodeId]

    def trace(self, node: NodeId) -> np.ndarray:
        """Temperature history of one node."""
        try:
            i = self.nodes.index(node)
        except ValueError:
            raise ValidationError(f"no node {node!r} in the transient result") from None
        return self.temperatures[:, i]

    @property
    def final(self) -> np.ndarray:
        """Temperatures at the last time point."""
        return self.temperatures[-1]

    @property
    def peak_rise(self) -> float:
        """The largest rise reached anywhere, any time."""
        return float(self.temperatures.max(initial=0.0))

    def settle_time(self, node: NodeId, *, fraction: float = 0.9) -> float:
        """First time the node reaches ``fraction`` of its final rise."""
        trace = self.trace(node)
        target = fraction * trace[-1]
        hit = np.nonzero(trace >= target)[0]
        return float(self.times[hit[0]]) if hit.size else float(self.times[-1])

    def observed(self, nodes: Sequence[NodeId]) -> "TransientResult":
        """The trajectory restricted to ``nodes`` (column subset, same times).

        Traces of the kept nodes are the exact arrays of the full result —
        the scenario layer stores only the observed subset without
        changing a single bit of it.
        """
        idx = []
        for node in nodes:
            try:
                idx.append(self.nodes.index(node))
            except ValueError:
                raise ValidationError(
                    f"no node {node!r} in the transient result; "
                    f"known: {self.nodes}"
                ) from None
        return TransientResult(
            times=self.times,
            temperatures=self.temperatures[:, idx],
            nodes=list(nodes),
        )

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable dump (exact float round-trip via JSON doubles).

        Node ids must be JSON scalars (str/int) — the scenario layer's
        circuits name nodes with strings; ad-hoc tuple-keyed networks are
        not storable.
        """
        for node in self.nodes:
            if not isinstance(node, (str, int)) or isinstance(node, bool):
                raise ValidationError(
                    f"transient payloads need str/int node ids, got {node!r}"
                )
        return {
            "kind": "transient",
            "times_s": self.times.tolist(),
            "temperatures": self.temperatures.tolist(),
            "nodes": list(self.nodes),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TransientResult":
        """Rebuild a result from :meth:`to_payload` output (store/JSON)."""
        try:
            return cls(
                times=np.asarray(payload["times_s"], dtype=float),
                temperatures=np.asarray(payload["temperatures"], dtype=float),
                nodes=list(payload["nodes"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed transient payload: {exc!r}") from exc


def transient_lhs(circuit: ThermalCircuit, dt: float) -> sp.csr_matrix:
    """The backward-Euler left-hand matrix C/dt + G of a circuit.

    Power sources only enter the right-hand side, so this matrix — and
    hence its factorization — is shared by every drive level of one
    network: the scenario layer groups same-geometry trajectories on its
    content and factorises once (see
    :meth:`repro.scenarios.physics.TransientModel.solve_batch`).
    """
    require_positive("dt", dt)
    g = circuit.conductance_matrix(sparse=True)
    c = capacitance_vector(circuit)
    return (g + sp.diags(c / dt)).tocsr()


def capacitance_vector(circuit: ThermalCircuit) -> np.ndarray:
    """Per-node capacitance (J/K) aligned with ``circuit.nodes``."""
    c = np.zeros(circuit.n_nodes)
    for cap in circuit.capacitors:
        c[circuit.node_index(cap.node)] += cap.capacitance
    return c


def pulse_train_scales(
    t_end: float, n_steps: int, period_s: float, duty: float
) -> np.ndarray:
    """Per-step source scales of a rectangular pulse train (duty cycle).

    The square wave is sampled with a zero-order hold at each step's
    start: step ``k`` (covering ``(t_{k-1}, t_k]``) drives the sources at
    full power when ``t_{k-1}`` falls in the on-phase of its period —
    ``(t_{k-1} mod period_s) < duty * period_s`` — and at zero otherwise.
    ``duty`` is the on-fraction of each period; ``duty == 1.0`` keeps the
    drive on continuously, reproducing :func:`step_response`'s constant
    sources exactly (scaling by 1.0 is bitwise exact).
    """
    require_positive("t_end", t_end)
    require_positive_int("n_steps", n_steps)
    require_positive("period_s", period_s)
    if not 0.0 < duty <= 1.0:
        raise ValidationError(f"duty must be in (0, 1], got {duty!r}")
    starts = np.arange(n_steps) * (t_end / n_steps)
    return np.where(np.mod(starts, period_s) < duty * period_s, 1.0, 0.0)


def step_response(
    circuit: ThermalCircuit,
    *,
    t_end: float,
    n_steps: int = 200,
    step_solver: Callable[[np.ndarray], np.ndarray] | None = None,
    drive: Sequence[float] | np.ndarray | None = None,
) -> TransientResult:
    """Integrate the network from ΔT = 0 with the sources switched on at t=0.

    Backward Euler: (C/dt + G)·T_{k+1} = q + (C/dt)·T_k.  With any massless
    nodes the scheme degenerates to their algebraic KCL rows, which is the
    correct differential-algebraic limit.

    The left-hand matrix is constant across steps, so it is factorised
    exactly once (through the global factor cache); every step then costs
    only the triangular back-substitutions.  Callers integrating several
    drive levels of one network pass a precomputed ``step_solver``
    (``factorized_solver(transient_lhs(circuit, dt))``) so even the single
    factorization is shared — factorization is deterministic, so the
    trajectory is bit-identical either way.

    ``drive`` optionally shapes the sources in time: an ``(n_steps,)``
    array of non-negative scales, where step ``k`` integrates with
    sources ``drive[k-1] * q`` (zero-order hold per step; see
    :func:`pulse_train_scales` for the duty-cycle square wave).  The
    matrix is drive-independent — only the right-hand side changes — so
    every drive shape of one network shares the same factor.  ``None``
    is the constant step drive, and an all-ones array reproduces it
    bitwise.
    """
    require_positive("t_end", t_end)
    require_positive_int("n_steps", n_steps)
    circuit.validate()
    q = circuit.source_vector()
    c = capacitance_vector(circuit)
    dt = t_end / n_steps
    scales: np.ndarray | None = None
    if drive is not None:
        scales = np.asarray(drive, dtype=float)
        if scales.shape != (n_steps,):
            raise ValidationError(
                f"drive must have one scale per step ({n_steps},), got "
                f"shape {scales.shape}"
            )
        if not np.all(np.isfinite(scales)) or np.any(scales < 0.0):
            raise ValidationError("drive scales must be finite and >= 0")
    step_solve = (
        step_solver
        if step_solver is not None
        else factorized_solver(transient_lhs(circuit, dt))
    )

    times = np.linspace(0.0, t_end, n_steps + 1)
    temps = np.zeros((n_steps + 1, circuit.n_nodes))
    current = np.zeros(circuit.n_nodes)
    for k in range(1, n_steps + 1):
        q_k = q if scales is None else scales[k - 1] * q
        rhs = q_k + (c / dt) * current
        current = step_solve(rhs)
        temps[k] = current
    if not np.all(np.isfinite(temps)):
        raise SolverError("transient solve produced non-finite temperatures")
    return TransientResult(times=times, temperatures=temps, nodes=circuit.nodes)


def time_constants(circuit: ThermalCircuit, *, n: int = 5) -> np.ndarray:
    """The ``n`` slowest thermal time constants (seconds) of the network.

    Solves the generalised eigenproblem G·v = λ·C·v restricted to nodes
    that carry capacitance; τ = 1/λ.  Massless nodes are eliminated by
    Schur complement (Kron reduction), which preserves the dynamics seen
    from the massive nodes.
    """
    require_positive_int("n", n)
    circuit.validate()
    g = np.asarray(circuit.conductance_matrix(sparse=True).todense(), dtype=float)
    c = capacitance_vector(circuit)
    massive = np.where(c > 0.0)[0]
    if massive.size == 0:
        raise SolverError("no node carries capacitance; add Capacitor elements first")
    massless = np.where(c == 0.0)[0]
    g_mm = g[np.ix_(massive, massive)]
    if massless.size:
        g_ma = g[np.ix_(massive, massless)]
        g_aa = g[np.ix_(massless, massless)]
        g_am = g[np.ix_(massless, massive)]
        try:
            g_mm = g_mm - g_ma @ la.solve(g_aa, g_am)
        except la.LinAlgError as exc:
            raise SolverError("Kron reduction failed: massless block singular") from exc
    c_mm = np.diag(c[massive])
    eigenvalues = la.eigh(g_mm, c_mm, eigvals_only=True)
    eigenvalues = eigenvalues[eigenvalues > 1e-30]
    taus = np.sort(1.0 / eigenvalues)[::-1]
    return taus[:n]
