"""Voxelisation: turn a stack + via geometry into solver grids.

The finite-volume solvers consume per-cell conductivity and source-density
arrays.  This module builds them for

* the axisymmetric unit cell (one via at the axis of an equal-area
  circular footprint), and
* the 3-D Cartesian block (any number of vias at explicit positions, with
  anti-aliased conductivities on via boundaries).

Heat totals are preserved exactly: source densities are normalised to the
actual discretised source volume, so the FVM consumes the same watts as
the network models it is compared against.

The build is split along the matrix/RHS boundary of the linear system it
feeds: the *geometry* half (mesh + per-cell conductivity — everything the
system matrix depends on) is independent of the power specification, and
the *source* half (per-cell heat density — the right-hand side) is a cheap
deposition on a finished mesh.  :func:`build_axisym_geometry` /
:func:`build_cartesian_geometry` expose the power-independent half with
their own cache keys, so the matrix-batched solve plane voxelises a
shared-matrix group (e.g. a power sweep) exactly once and only re-deposits
sources per point.  All hot loops are numpy-broadcast — identical
floating-point operations per cell as the historical per-cell loops, so
the arrays are bit-for-bit unchanged.

Both full-grid builders are memoized on the *content* of (stack, via,
power) plus their keyword arguments through
:data:`repro.perf.assembly_cache`: sweep points that share a
sub-configuration (and repeated sweeps under multi-scenario traffic) skip
the voxelisation entirely.  Grid building is deterministic, so a cache hit
returns arrays identical to a fresh build.

The geometry half splits once more, along the conductivity boundary: the
*frame* (mesh edges, via coverage fractions, plane bands) depends only on
geometric dimensions — thicknesses, radii, positions — never on any
material's conductivity.  Frames are cached under conductivity-*neutralised*
(stack, via) keys, so the k(T) fixed-point loop of
:class:`~repro.core.nonlinear.NonlinearSolver` around an FEM model — which
re-evaluates every layer's conductivity each iteration but never moves an
interface — rebuilds only the cheap conductivity stamping and reuses the
frame (including the expensive Cartesian coverage loops) across all
iterations.  ``voxel_frame_hits`` / ``voxel_frame_misses`` in
:func:`repro.perf.stats` count the reuse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import GeometryError
from ..geometry import PowerSpec, Stack3D, TSV
from ..geometry.stack import LayerInterval
from ..materials import Material
from ..perf import assembly_cache, content_key, increment
from .mesh import centers, layered_mesh


@dataclass(frozen=True)
class AxisymGrids:
    """Everything :func:`repro.fem.axisym.solve_axisymmetric` needs."""

    r_edges: np.ndarray
    z_edges: np.ndarray
    conductivity: np.ndarray
    source_density: np.ndarray
    plane_bands: list[tuple[float, float]]  # z-extent of each plane (incl. its ILD)


@dataclass(frozen=True)
class AxisymGeometry:
    """The power-independent half of :class:`AxisymGrids`.

    Mesh plus conductivity fully determine the assembled system matrix;
    two points sharing an ``AxisymGeometry`` differ only in their
    right-hand side (see :func:`axisym_source_density`).
    """

    r_edges: np.ndarray
    z_edges: np.ndarray
    conductivity: np.ndarray
    plane_bands: list[tuple[float, float]]


@dataclass(frozen=True)
class CartesianGrids:
    """Everything :func:`repro.fem.cartesian.solve_cartesian` needs."""

    x_edges: np.ndarray
    y_edges: np.ndarray
    z_edges: np.ndarray
    conductivity: np.ndarray
    source_density: np.ndarray
    plane_bands: list[tuple[float, float]]


@dataclass(frozen=True)
class CartesianGeometry:
    """The power-independent half of :class:`CartesianGrids`.

    ``outer_frac`` (per-cell via+liner coverage) is kept because the
    source deposition needs it to exclude the via footprint.
    """

    x_edges: np.ndarray
    y_edges: np.ndarray
    z_edges: np.ndarray
    conductivity: np.ndarray
    outer_frac: np.ndarray
    plane_bands: list[tuple[float, float]]


@dataclass(frozen=True)
class AxisymFrame:
    """The conductivity-free half of :class:`AxisymGeometry`.

    Mesh edges and plane bands depend only on geometric dimensions, so two
    stacks differing solely in material conductivities — successive k(T)
    fixed-point iterates, say — share one frame bit-for-bit.
    """

    r_edges: np.ndarray
    z_edges: np.ndarray
    plane_bands: list[tuple[float, float]]


@dataclass(frozen=True)
class CartesianFrame:
    """The conductivity-free half of :class:`CartesianGeometry`.

    Carries the per-cell via coverage fractions — the expensive part of
    the 3-D voxelisation — which are pure functions of mesh and via
    placement.
    """

    x_edges: np.ndarray
    y_edges: np.ndarray
    z_edges: np.ndarray
    metal_frac: np.ndarray
    outer_frac: np.ndarray
    plane_bands: list[tuple[float, float]]


def _neutral_material(material: Material) -> Material:
    """The material with its conductivity data wiped (frame-key helper)."""
    return replace(material, thermal_conductivity=1.0, conductivity_slope=0.0)


def _conductivity_free(stack: Stack3D, via: TSV) -> tuple[Stack3D, TSV]:
    """(stack, via) with every material conductivity neutralised.

    Keys the frame caches: the frame is a pure function of this pair plus
    the mesh targets, so any two inputs that agree here — no matter how
    their conductivities differ — may share a cached frame.  Densities and
    specific heats are left alone; they never change within a solve.
    """
    planes = tuple(
        replace(
            plane,
            substrate=replace(
                plane.substrate,
                material=_neutral_material(plane.substrate.material),
            ),
            ild=replace(
                plane.ild, material=_neutral_material(plane.ild.material)
            ),
        )
        for plane in stack.planes
    )
    bonds = tuple(
        replace(bond, material=_neutral_material(bond.material))
        for bond in stack.bonds
    )
    neutral_stack = replace(stack, planes=planes, bonds=bonds)
    neutral_via = replace(
        via, fill=_neutral_material(via.fill), liner=_neutral_material(via.liner)
    )
    return neutral_stack, neutral_via


def _z_breakpoints(stack: Stack3D, via: TSV) -> list[float]:
    """All z planes the mesh must honour: layer interfaces, via bottom,
    device-layer bottoms."""
    points = [0.0]
    for iv in stack.layer_intervals():
        points.append(iv.z1)
    z_bottom, z_top = stack.tsv_span(via.extension)
    points.extend([z_bottom, z_top])
    for j in range(stack.n_planes):
        top = stack.substrate_top(j)
        points.append(top - stack.planes[j].device_layer_thickness)
    return points


def _plane_bands(stack: Stack3D) -> list[tuple[float, float]]:
    """z-extent of each plane: bottom of its substrate to top of its ILD."""
    bands: list[tuple[float, float]] = []
    intervals = stack.layer_intervals()
    for j in range(stack.n_planes):
        plane_ivs = [iv for iv in intervals if iv.plane_index == j]
        z0 = min(iv.z0 for iv in plane_ivs)
        z1 = stack.ild_interval(j).z1
        bands.append((z0, z1))
    return bands


def _layer_of(intervals: list[LayerInterval], z: float) -> LayerInterval:
    for iv in intervals:
        if iv.z0 - 1e-15 <= z < iv.z1 + 1e-15:
            return iv
    raise GeometryError(f"z = {z} outside the stack")


def _layer_conductivities(stack: Stack3D, zc: np.ndarray) -> np.ndarray:
    """Bulk conductivity of the stack layer containing each z centre."""
    intervals = stack.layer_intervals()
    return np.array([_layer_of(intervals, z).layer.conductivity for z in zc])


def _source_regions(
    stack: Stack3D, via: TSV, power: PowerSpec, power_scale: float
) -> list[tuple[float, float, bool, float]]:
    """(z0, z1, via_crosses_region, watts) for every heat-bearing band.

    ``via_crosses_region`` tells the voxelisers to exclude the via
    footprint from the source; the watts are already scaled for unit
    cells (``power_scale``).
    """
    z_bottom, z_top = stack.tsv_span(via.extension)
    regions: list[tuple[float, float, bool, float]] = []
    for j in range(stack.n_planes):
        # device band: top slice of the substrate
        top = stack.substrate_top(j)
        dev0 = top - stack.planes[j].device_layer_thickness
        crosses = z_bottom < top - 1e-15 and z_top > dev0 + 1e-15
        regions.append((dev0, top, crosses, power.device_heat(stack, j) * power_scale))
        # ILD band
        ild = stack.ild_interval(j)
        crosses = z_bottom < ild.z1 - 1e-15 and z_top > ild.z0 + 1e-15
        regions.append(
            (ild.z0, ild.z1, crosses, power.ild_heat(stack, j) * power_scale)
        )
    return regions


# ---------------------------------------------------------------------------
# axisymmetric unit cell
# ---------------------------------------------------------------------------
def build_axisym_grids(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    *,
    cell_area: float | None = None,
    power_scale: float = 1.0,
    nr: int = 36,
    nz: int = 90,
) -> AxisymGrids:
    """Grids for one via at the axis of an equal-area circular cell.

    Parameters
    ----------
    stack, via, power:
        The geometry and heat description.
    cell_area:
        Horizontal area of the cell; defaults to the stack footprint.
        Cluster experiments pass footprint/n (each member via serves an
        equal share of the block — the adiabatic unit-cell reduction).
    power_scale:
        Multiplies every per-plane heat (1/n for cluster unit cells).
    nr, nz:
        Target radial/axial cell counts.
    """
    key = content_key(
        "axisym", stack, via, power, cell_area, power_scale, nr, nz
    )
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            return cached
    # through the cached geometry builder: a per-point power sweep misses
    # the power-keyed grids cache every point but shares the power-free
    # geometry (mesh + conductivity) with earlier points — and with any
    # matrix-group batch that already built it
    geometry = build_axisym_geometry(
        stack, via, cell_area=cell_area, nr=nr, nz=nz
    )
    grids = AxisymGrids(
        r_edges=geometry.r_edges,
        z_edges=geometry.z_edges,
        conductivity=geometry.conductivity,
        source_density=axisym_source_density(
            stack, via, power, power_scale, geometry.r_edges, geometry.z_edges
        ),
        plane_bands=geometry.plane_bands,
    )
    if key is not None:
        assembly_cache.put(key, grids)
    return grids


def build_axisym_geometry(
    stack: Stack3D,
    via: TSV,
    *,
    cell_area: float | None = None,
    nr: int = 36,
    nz: int = 90,
) -> AxisymGeometry:
    """The power-independent mesh + conductivity of the axisymmetric cell.

    Cached under its own (power-free) key, so a matrix group — many
    right-hand sides against one system — voxelises exactly once.
    """
    key = content_key("axisym_geom", stack, via, cell_area, nr, nz)
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            return cached
    geometry = _build_axisym_geometry(
        stack, via, cell_area=cell_area, nr=nr, nz=nz
    )
    if key is not None:
        assembly_cache.put(key, geometry)
    return geometry


def _axisym_frame(
    stack: Stack3D, via: TSV, *, area: float, nr: int, nz: int
) -> AxisymFrame:
    """The cached conductivity-free axisymmetric mesh (see module docs)."""
    neutral_stack, neutral_via = _conductivity_free(stack, via)
    key = content_key("axisym_frame", neutral_stack, neutral_via, area, nr, nz)
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            increment("voxel_frame_hits")
            return cached
        increment("voxel_frame_misses")
    r_edges = layered_mesh(
        [0.0, via.radius, via.outer_radius, math.sqrt(area / math.pi)],
        nr,
        min_per_layer=3,
        weights=[0.25, 0.15, 0.6],
    )
    z_edges = layered_mesh(_z_breakpoints(stack, via), nz, min_per_layer=2)
    frame = AxisymFrame(
        r_edges=r_edges, z_edges=z_edges, plane_bands=_plane_bands(stack)
    )
    if key is not None:
        assembly_cache.put(key, frame)
    return frame


def _build_axisym_geometry(
    stack: Stack3D,
    via: TSV,
    *,
    cell_area: float | None,
    nr: int,
    nz: int,
) -> AxisymGeometry:
    area = cell_area if cell_area is not None else stack.footprint_area
    if via.occupied_area >= area:
        raise GeometryError("via (incl. liner) does not fit the unit cell")
    frame = _axisym_frame(stack, via, area=area, nr=nr, nz=nz)
    rc, zc = centers(frame.r_edges), centers(frame.z_edges)

    z_bottom, z_top = stack.tsv_span(via.extension)
    # layer conductivity broadcast down each column, via/liner masks on top
    conductivity = np.repeat(
        _layer_conductivities(stack, zc)[None, :], rc.size, axis=0
    )
    span = (zc > z_bottom) & (zc < z_top)
    conductivity[np.ix_(rc < via.radius, span)] = via.fill.thermal_conductivity
    inside_liner = (rc >= via.radius) & (rc < via.outer_radius)
    conductivity[np.ix_(inside_liner, span)] = via.liner.thermal_conductivity
    return AxisymGeometry(
        r_edges=frame.r_edges,
        z_edges=frame.z_edges,
        conductivity=conductivity,
        plane_bands=frame.plane_bands,
    )


def axisym_source_density(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    power_scale: float,
    r_edges: np.ndarray,
    z_edges: np.ndarray,
) -> np.ndarray:
    """Per-cell heat density on a finished axisymmetric mesh (the RHS half)."""
    rc, zc = centers(r_edges), centers(z_edges)
    ring_areas = math.pi * (r_edges[1:] ** 2 - r_edges[:-1] ** 2)
    source = np.zeros((rc.size, zc.size))
    for z0, z1, crosses, watts in _source_regions(stack, via, power, power_scale):
        if watts == 0.0:
            continue
        z_mask = (zc > z0) & (zc < z1)
        r_mask = rc >= via.outer_radius if crosses else np.ones(rc.size, dtype=bool)
        dz = (z_edges[1:] - z_edges[:-1])[z_mask]
        volume = ring_areas[r_mask].sum() * dz.sum()
        if volume <= 0.0:
            raise GeometryError("source region has zero discretised volume")
        source[np.ix_(r_mask, z_mask)] += watts / volume
    return source


# ---------------------------------------------------------------------------
# Cartesian block with explicit via positions
# ---------------------------------------------------------------------------
def grid_via_positions(n: int, side_x: float, side_y: float) -> list[tuple[float, float]]:
    """Uniform grid placement of n vias over a rectangle.

    Perfect squares become √n × √n grids; other counts use the most
    square rows × cols factorisation (2 → 2×1).
    """
    if n <= 0:
        raise GeometryError("need at least one via")
    rows = int(math.sqrt(n))
    while n % rows:
        rows -= 1
    cols = n // rows
    return [
        ((i + 0.5) * side_x / cols, (j + 0.5) * side_y / rows)
        for j in range(rows)
        for i in range(cols)
    ]


def _coverage(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    cx: float,
    cy: float,
    radius: float,
    subsamples: int = 4,
) -> np.ndarray:
    """Fraction of each (x, y) cell covered by the disc, by subsampling.

    Broadcast over all cells at once; each cell sees the same subsample
    points and inside-test as the historical per-cell loop (cells wholly
    outside the disc's bounding box evaluate to exactly 0.0 either way),
    so the fractions are bit-for-bit unchanged.
    """
    offsets = (np.arange(subsamples) + 0.5) / subsamples
    xs = x_edges[:-1, None] + offsets[None, :] * np.diff(x_edges)[:, None]
    ys = y_edges[:-1, None] + offsets[None, :] * np.diff(y_edges)[:, None]
    inside = (xs[:, None, :, None] - cx) ** 2 + (
        ys[None, :, None, :] - cy
    ) ** 2 <= radius**2
    return inside.mean(axis=(2, 3))


def squared_via_dimensions(via: TSV) -> tuple[float, float]:
    """(half_side, liner_thickness) of the equivalent *square* via.

    A round via is awkward on a Cartesian mesh: cells straddling the liner
    mix materials and short out the very barrier the paper studies.  The
    equivalent square via sidesteps this:

    * the metal square has the same cross-section (side s = √π·r), so the
      vertical resistance is preserved exactly;
    * the liner ring thickness t is chosen so that the thin square ring's
      lateral resistance t/(k·h·4(s+t)) equals the cylindrical shell's
      ln((r+tL)/r)/(2π·k·h), preserving the paper's R3/R6/R9 exactly.
    """
    s = math.sqrt(math.pi) * via.radius
    c = math.log(via.outer_radius / via.radius) / (2.0 * math.pi)
    if 4.0 * c >= 1.0:
        raise GeometryError("liner too thick for the squared-via equivalence")
    t = 4.0 * s * c / (1.0 - 4.0 * c)
    return s / 2.0, t


def _square_coverage(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    cx: float,
    cy: float,
    half_side: float,
) -> np.ndarray:
    """Exact fraction of each (x, y) cell covered by an axis-aligned square."""
    x0, x1 = cx - half_side, cx + half_side
    y0, y1 = cy - half_side, cy + half_side
    overlap_x = np.clip(
        np.minimum(x_edges[1:], x1) - np.maximum(x_edges[:-1], x0), 0.0, None
    ) / np.diff(x_edges)
    overlap_y = np.clip(
        np.minimum(y_edges[1:], y1) - np.maximum(y_edges[:-1], y0), 0.0, None
    ) / np.diff(y_edges)
    return np.outer(overlap_x, overlap_y)


def build_cartesian_grids(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    *,
    via_positions: list[tuple[float, float]] | None = None,
    nx: int = 40,
    ny: int = 40,
    nz: int = 80,
    via_style: str = "squared",
) -> CartesianGrids:
    """Grids for a rectangular block with vias at explicit (x, y) positions.

    ``via_style``:

    * ``"squared"`` (default) — each via becomes the resistance-equivalent
      square via of :func:`squared_via_dimensions`, mesh-aligned so the
      liner barrier is represented exactly;
    * ``"round"`` — the literal circle, anti-aliased by area-fraction
      conductivity mixing.  Boundary cells then mix liner and bulk
      *arithmetically*, which overestimates lateral conductance through
      the liner; kept as an ablation of that discretisation error.
    """
    key = content_key(
        "cartesian", stack, via, power,
        tuple(via_positions) if via_positions is not None else None,
        nx, ny, nz, via_style,
    )
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            return cached
    # cached geometry builder: shares the expensive 3-D voxelization with
    # other powers at this geometry and with matrix-group batches
    geometry = build_cartesian_geometry(
        stack, via,
        via_positions=via_positions, nx=nx, ny=ny, nz=nz, via_style=via_style,
    )
    grids = CartesianGrids(
        x_edges=geometry.x_edges,
        y_edges=geometry.y_edges,
        z_edges=geometry.z_edges,
        conductivity=geometry.conductivity,
        source_density=cartesian_source_density(
            stack, via, power,
            geometry.x_edges, geometry.y_edges, geometry.z_edges,
            geometry.outer_frac,
        ),
        plane_bands=geometry.plane_bands,
    )
    if key is not None:
        assembly_cache.put(key, grids)
    return grids


def build_cartesian_geometry(
    stack: Stack3D,
    via: TSV,
    *,
    via_positions: list[tuple[float, float]] | None = None,
    nx: int = 40,
    ny: int = 40,
    nz: int = 80,
    via_style: str = "squared",
) -> CartesianGeometry:
    """The power-independent mesh + conductivity of the Cartesian block.

    Cached under its own (power-free) key; the expensive 3-D voxelisation
    of a matrix group runs once no matter how many right-hand sides it
    serves.
    """
    key = content_key(
        "cartesian_geom", stack, via,
        tuple(via_positions) if via_positions is not None else None,
        nx, ny, nz, via_style,
    )
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            return cached
    geometry = _build_cartesian_geometry(
        stack, via,
        via_positions=via_positions, nx=nx, ny=ny, nz=nz, via_style=via_style,
    )
    if key is not None:
        assembly_cache.put(key, geometry)
    return geometry


def _cartesian_frame(
    stack: Stack3D,
    via: TSV,
    *,
    via_positions: list[tuple[float, float]] | None,
    nx: int,
    ny: int,
    nz: int,
    via_style: str,
) -> CartesianFrame:
    """The cached conductivity-free Cartesian mesh + coverage fractions."""
    neutral_stack, neutral_via = _conductivity_free(stack, via)
    key = content_key(
        "cartesian_frame", neutral_stack, neutral_via,
        tuple(via_positions) if via_positions is not None else None,
        nx, ny, nz, via_style,
    )
    if key is not None:
        cached = assembly_cache.get(key)
        if cached is not None:
            increment("voxel_frame_hits")
            return cached
        increment("voxel_frame_misses")
    side = stack.footprint_side
    positions = via_positions or [(side / 2.0, side / 2.0)]
    if via_style == "squared":
        half_metal, liner_t = squared_via_dimensions(via)
        half_outer = half_metal + liner_t
    else:
        half_metal, half_outer = via.radius, via.outer_radius

    def axis_mesh(target: int) -> np.ndarray:
        points = [0.0, side]
        for cx, cy in positions:
            points.extend(
                [cx - half_outer, cx - half_metal, cx + half_metal,
                 cx + half_outer, cy - half_outer, cy - half_metal,
                 cy + half_metal, cy + half_outer]
            )
        inside = sorted({p for p in points if 0.0 <= p <= side})
        return layered_mesh(inside, target, min_per_layer=1)

    x_edges = axis_mesh(nx)
    y_edges = axis_mesh(ny)
    z_edges = layered_mesh(_z_breakpoints(stack, via), nz, min_per_layer=2)
    n_x, n_y = x_edges.size - 1, y_edges.size - 1

    metal_frac = np.zeros((n_x, n_y))
    outer_frac = np.zeros((n_x, n_y))
    for cx, cy in positions:
        if via_style == "squared":
            metal_frac += _square_coverage(x_edges, y_edges, cx, cy, half_metal)
            outer_frac += _square_coverage(x_edges, y_edges, cx, cy, half_outer)
        else:
            metal_frac += _coverage(x_edges, y_edges, cx, cy, half_metal)
            outer_frac += _coverage(x_edges, y_edges, cx, cy, half_outer)
    frame = CartesianFrame(
        x_edges=x_edges,
        y_edges=y_edges,
        z_edges=z_edges,
        metal_frac=np.clip(metal_frac, 0.0, 1.0),
        outer_frac=np.clip(outer_frac, 0.0, 1.0),
        plane_bands=_plane_bands(stack),
    )
    if key is not None:
        assembly_cache.put(key, frame)
    return frame


def _build_cartesian_geometry(
    stack: Stack3D,
    via: TSV,
    *,
    via_positions: list[tuple[float, float]] | None,
    nx: int,
    ny: int,
    nz: int,
    via_style: str,
) -> CartesianGeometry:
    if via_style not in ("squared", "round"):
        raise GeometryError(f"via_style must be 'squared' or 'round', got {via_style!r}")
    frame = _cartesian_frame(
        stack, via,
        via_positions=via_positions, nx=nx, ny=ny, nz=nz, via_style=via_style,
    )
    zc = centers(frame.z_edges)
    n_x, n_y = frame.metal_frac.shape
    n_z = zc.size
    metal_frac, outer_frac = frame.metal_frac, frame.outer_frac
    liner_frac = np.clip(outer_frac - metal_frac, 0.0, 1.0)

    z_bottom, z_top = stack.tsv_span(via.extension)
    k_z = _layer_conductivities(stack, zc)
    # bulk conductivity everywhere, the anti-aliased via mix on the span
    conductivity = np.broadcast_to(k_z[None, None, :], (n_x, n_y, n_z)).copy()
    span = (zc > z_bottom) & (zc < z_top)
    via_mix = (
        metal_frac * via.fill.thermal_conductivity
        + liner_frac * via.liner.thermal_conductivity
    )
    conductivity[:, :, span] = (
        via_mix[:, :, None] + (1.0 - outer_frac)[:, :, None] * k_z[span][None, None, :]
    )
    return CartesianGeometry(
        x_edges=frame.x_edges,
        y_edges=frame.y_edges,
        z_edges=frame.z_edges,
        conductivity=conductivity,
        outer_frac=outer_frac,
        plane_bands=frame.plane_bands,
    )


def cartesian_source_density(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    outer_frac: np.ndarray,
) -> np.ndarray:
    """Per-cell heat density on a finished Cartesian mesh (the RHS half)."""
    zc = centers(z_edges)
    n_x, n_y = x_edges.size - 1, y_edges.size - 1
    cell_area = np.outer(np.diff(x_edges), np.diff(y_edges))
    source = np.zeros((n_x, n_y, zc.size))
    for z0, z1, crosses, watts in _source_regions(stack, via, power, 1.0):
        if watts == 0.0:
            continue
        z_mask = (zc > z0) & (zc < z1)
        weight = (1.0 - outer_frac) if crosses else np.ones((n_x, n_y))
        dz = (z_edges[1:] - z_edges[:-1])[z_mask]
        volume = (cell_area * weight).sum() * dz.sum()
        if volume <= 0.0:
            raise GeometryError("source region has zero discretised volume")
        source[:, :, z_mask] += (watts / volume) * weight[:, :, None]
    return source
