"""Axisymmetric (r–z) steady-state heat conduction, finite-volume method.

This is the library's substitute for the paper's COMSOL runs: it solves

    (1/r) ∂/∂r ( r k ∂T/∂r ) + ∂/∂z ( k ∂T/∂z ) = −q(r, z)

on a structured cell-centred grid with per-cell conductivity, a Dirichlet
heat-sink face at z = 0 (ΔT = 0) and adiabatic outer/top boundaries (the
lateral boundary of the analysed block is a symmetry plane between
neighbouring blocks, hence no flux).  Face conductances use the standard
harmonic mean, which is exact for piecewise-constant k in 1-D and makes
the scheme conservative across material interfaces (silicon/liner/copper).

The solver knows nothing about stacks or vias; :mod:`repro.fem.reference`
builds the conductivity/source grids from the geometry layer.

:func:`solve_axisymmetric_multi` is the matrix-batched entry point: many
source-density grids against one (mesh, conductivity) pair assemble and
factorise the system exactly once and back-substitute per right-hand
side — each returned field is bit-for-bit identical to the corresponding
:func:`solve_axisymmetric` call.

Systems up to :data:`NATURAL_ORDERING_CUTOFF` unknowns factorise with
SuperLU's *natural* column ordering instead of the default COLAMD.
Natural ordering is what makes a solo solve bit-for-bit identical to its
slice of a block-diagonal stacked solve
(:func:`repro.network.solve.solve_sparse_stacked`), which is how coarse
FEM geometry sweeps ride the cross-matrix stacked tier; the cutoff keeps
the fill-in premium confined to meshes small enough not to care.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError, ValidationError
from ..network.solve import solve_sparse, solve_sparse_multi

#: up to this many unknowns the axisymmetric factorisation uses natural
#: ordering (batch-size invariant, hence stackable); the coarse preset
#: (24×60 = 1440) is under it, medium (36×90 = 3240) and above keep
#: COLAMD's cheaper fill-in
NATURAL_ORDERING_CUTOFF = 2048


def _permc_spec(n_unknowns: int) -> str | None:
    """Column ordering for an axisymmetric system of ``n_unknowns``."""
    return "NATURAL" if n_unknowns <= NATURAL_ORDERING_CUTOFF else None


@dataclass(frozen=True)
class AxisymField:
    """Solution field on the (nr × nz) cell grid."""

    r_edges: np.ndarray
    z_edges: np.ndarray
    temperatures: np.ndarray  # shape (nr, nz), kelvin rise above the sink
    solve_time: float
    conductivity: np.ndarray | None = None  # per-cell k, kept for flux queries

    @property
    def nr(self) -> int:
        return self.r_edges.size - 1

    @property
    def nz(self) -> int:
        return self.z_edges.size - 1

    @property
    def n_unknowns(self) -> int:
        return self.temperatures.size

    @property
    def max_rise(self) -> float:
        return float(self.temperatures.max())

    def max_rise_in_band(self, z0: float, z1: float) -> float:
        """Maximum rise among cells whose centres lie in [z0, z1]."""
        zc = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        mask = (zc >= z0) & (zc <= z1)
        if not mask.any():
            raise ValidationError(f"no cell centres in band [{z0}, {z1}]")
        return float(self.temperatures[:, mask].max())

    def at(self, r: float, z: float) -> float:
        """Rise of the cell containing (r, z)."""
        i = int(np.clip(np.searchsorted(self.r_edges, r) - 1, 0, self.nr - 1))
        j = int(np.clip(np.searchsorted(self.z_edges, z) - 1, 0, self.nz - 1))
        return float(self.temperatures[i, j])

    def z_profile(self, r: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """(z centres, T) along one radial column (the axis by default)."""
        i = int(np.clip(np.searchsorted(self.r_edges, r) - 1, 0, self.nr - 1))
        zc = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        return zc, self.temperatures[i].copy()

    def radial_profile(self, z: float) -> tuple[np.ndarray, np.ndarray]:
        """(r centres, T) across the cell layer containing ``z``."""
        j = int(np.clip(np.searchsorted(self.z_edges, z) - 1, 0, self.nz - 1))
        rc = 0.5 * (self.r_edges[:-1] + self.r_edges[1:])
        return rc, self.temperatures[:, j].copy()

    def vertical_flux(self, z: float) -> np.ndarray:
        """Downward heat flow (W) through each radial ring at the grid face
        nearest to ``z``.

        Positive values flow toward the heat sink.  Needs the per-cell
        conductivity the solver attaches to the field.
        """
        if self.conductivity is None:
            raise SolverError("field carries no conductivity; cannot compute flux")
        j = int(np.clip(np.searchsorted(self.z_edges, z), 1, self.nz - 1))
        zc = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        ring = np.pi * (self.r_edges[1:] ** 2 - self.r_edges[:-1] ** 2)
        d_below = self.z_edges[j] - zc[j - 1]
        d_above = zc[j] - self.z_edges[j]
        g = ring / (
            d_below / self.conductivity[:, j - 1] + d_above / self.conductivity[:, j]
        )
        return g * (self.temperatures[:, j] - self.temperatures[:, j - 1])

    def flux_partition(self, z: float, r_boundary: float) -> tuple[float, float]:
        """(inner watts, outer watts) crossing the face nearest ``z``.

        With ``r_boundary`` at the via's outer radius this quantifies the
        paper's path split: heat descending *through the via* versus
        through the surrounding bulk.
        """
        flux = self.vertical_flux(z)
        rc = 0.5 * (self.r_edges[:-1] + self.r_edges[1:])
        inner = float(flux[rc < r_boundary].sum())
        outer = float(flux[rc >= r_boundary].sum())
        return inner, outer


def _check_grid(edges: np.ndarray, name: str) -> np.ndarray:
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError(f"{name} must be a 1-D array of at least 2 edges")
    if np.any(np.diff(edges) <= 0):
        raise ValidationError(f"{name} must be strictly increasing")
    return edges


def _check_axisym_inputs(
    r_edges: np.ndarray, z_edges: np.ndarray, conductivity: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate the (mesh, conductivity) pair shared by both solve paths."""
    r_edges = _check_grid(r_edges, "r_edges")
    z_edges = _check_grid(z_edges, "z_edges")
    if abs(r_edges[0]) > 1e-15:
        raise ValidationError("r_edges must start at the axis (r = 0)")
    nr, nz = r_edges.size - 1, z_edges.size - 1
    k = np.asarray(conductivity, dtype=float)
    if k.shape != (nr, nz):
        raise ValidationError(
            f"conductivity shape must be ({nr}, {nz}), got {k.shape}"
        )
    if np.any(k <= 0):
        raise SolverError("conductivity must be positive everywhere")
    return r_edges, z_edges, k


def _check_axisym_source(
    source_density: np.ndarray, nr: int, nz: int
) -> np.ndarray:
    q = np.asarray(source_density, dtype=float)
    if q.shape != (nr, nz):
        raise ValidationError(
            f"source shape must be ({nr}, {nz}), got {q.shape}"
        )
    return q


def solve_axisymmetric(
    r_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
    source_density: np.ndarray,
) -> AxisymField:
    """Solve the axisymmetric heat equation on a structured grid.

    Parameters
    ----------
    r_edges, z_edges:
        Cell edge coordinates; ``r_edges[0]`` must be 0 (the axis).
    conductivity:
        Per-cell k, shape (nr, nz), W/(m·K); all entries positive.
    source_density:
        Per-cell volumetric heat q, shape (nr, nz), W/m³.

    Returns
    -------
    AxisymField
        Temperature rises above the z=0 Dirichlet face.
    """
    r_edges, z_edges, k = _check_axisym_inputs(r_edges, z_edges, conductivity)
    nr, nz = r_edges.size - 1, z_edges.size - 1
    q = _check_axisym_source(source_density, nr, nz)

    start = time.perf_counter()
    matrix, volume = _assemble_axisym_system(r_edges, z_edges, k)
    rhs = (q * volume).ravel()
    temps = solve_sparse(matrix, rhs, permc_spec=_permc_spec(rhs.size)).reshape(
        nr, nz
    )
    elapsed = time.perf_counter() - start
    return AxisymField(
        r_edges=r_edges,
        z_edges=z_edges,
        temperatures=temps,
        solve_time=elapsed,
        conductivity=k,
    )


def solve_axisymmetric_multi(
    r_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
    source_densities: Sequence[np.ndarray],
) -> list[AxisymField]:
    """Solve one axisymmetric system against many source grids.

    The system matrix is assembled and factorised exactly once; each
    source grid becomes one RHS column, back-substituted individually
    through the shared factor (see
    :func:`repro.network.solve.solve_sparse_multi`), so field ``i`` is
    bit-for-bit identical to ``solve_axisymmetric(..., source_densities[i])``.
    The recorded ``solve_time`` is the batch's wall-clock share per field.
    """
    r_edges, z_edges, k = _check_axisym_inputs(r_edges, z_edges, conductivity)
    nr, nz = r_edges.size - 1, z_edges.size - 1
    sources = [_check_axisym_source(q, nr, nz) for q in source_densities]
    if not sources:
        return []

    start = time.perf_counter()
    matrix, volume = _assemble_axisym_system(r_edges, z_edges, k)
    rhs_block = np.column_stack([(q * volume).ravel() for q in sources])
    temps_block = solve_sparse_multi(
        matrix, rhs_block, permc_spec=_permc_spec(rhs_block.shape[0])
    )
    elapsed = (time.perf_counter() - start) / len(sources)
    return [
        AxisymField(
            r_edges=r_edges,
            z_edges=z_edges,
            temperatures=temps_block[:, i].reshape(nr, nz),
            solve_time=elapsed,
            conductivity=k,
        )
        for i in range(len(sources))
    ]


def assemble_axisymmetric(
    r_edges: np.ndarray, z_edges: np.ndarray, conductivity: np.ndarray
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Validate and assemble one axisymmetric system without solving it.

    Returns the (conductance matrix, cell volumes) pair
    :func:`solve_axisymmetric` would build internally — the RHS of a
    source grid ``q`` is ``(q * volume).ravel()``.  The cross-matrix
    stacked tier uses this to lift many same-topology systems out of
    their models and solve them through one block-diagonal factor.
    """
    r_edges, z_edges, k = _check_axisym_inputs(r_edges, z_edges, conductivity)
    return _assemble_axisym_system(r_edges, z_edges, k)


def _assemble_axisym_system(
    r_edges: np.ndarray, z_edges: np.ndarray, k: np.ndarray
) -> tuple[sp.csr_matrix, np.ndarray]:
    """(conductance matrix, cell volumes) of the validated system."""
    nr, nz = r_edges.size - 1, z_edges.size - 1
    dr = np.diff(r_edges)  # (nr,)
    dz = np.diff(z_edges)  # (nz,)
    rc = 0.5 * (r_edges[:-1] + r_edges[1:])
    # cell volumes: π (r_e² − r_w²) Δz
    ring = np.pi * (r_edges[1:] ** 2 - r_edges[:-1] ** 2)  # (nr,)
    volume = ring[:, None] * dz[None, :]

    def idx(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return i * nz + j

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    diag = np.zeros((nr, nz))

    # radial faces between cell (i, j) and (i+1, j) at r = r_edges[i+1]
    if nr > 1:
        area_r = 2.0 * np.pi * r_edges[1:-1][:, None] * dz[None, :]  # (nr-1, nz)
        d_west = (r_edges[1:-1] - rc[:-1])[:, None]
        d_east = (rc[1:] - r_edges[1:-1])[:, None]
        g_r = area_r / (d_west / k[:-1, :] + d_east / k[1:, :])
        ii, jj = np.meshgrid(np.arange(nr - 1), np.arange(nz), indexing="ij")
        a = idx(ii, jj).ravel()
        b = idx(ii + 1, jj).ravel()
        g = g_r.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))
        np.add.at(diag, (ii.ravel(), jj.ravel()), g)
        np.add.at(diag, (ii.ravel() + 1, jj.ravel()), g)

    # axial faces between cell (i, j) and (i, j+1)
    if nz > 1:
        zc = 0.5 * (z_edges[:-1] + z_edges[1:])
        area_z = ring[:, None] * np.ones((1, nz - 1))
        d_south = (z_edges[1:-1] - zc[:-1])[None, :]
        d_north = (zc[1:] - z_edges[1:-1])[None, :]
        g_z = area_z / (d_south / k[:, :-1] + d_north / k[:, 1:])
        ii, jj = np.meshgrid(np.arange(nr), np.arange(nz - 1), indexing="ij")
        a = idx(ii, jj).ravel()
        b = idx(ii, jj + 1).ravel()
        g = g_z.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-g, -g))
        np.add.at(diag, (ii.ravel(), jj.ravel()), g)
        np.add.at(diag, (ii.ravel(), jj.ravel() + 1), g)

    # bottom Dirichlet face (z = 0): ghost at the face with ΔT = 0
    g_bottom = ring * k[:, 0] / (0.5 * dz[0])
    diag[:, 0] += g_bottom
    # outer radial, top: adiabatic — nothing to add

    n = nr * nz
    all_rows = np.concatenate(rows + [idx(np.arange(nr).repeat(nz), np.tile(np.arange(nz), nr))])
    all_cols = np.concatenate(cols + [idx(np.arange(nr).repeat(nz), np.tile(np.arange(nz), nr))])
    all_vals = np.concatenate(vals + [diag.ravel()])
    matrix = sp.coo_matrix((all_vals, (all_rows, all_cols)), shape=(n, n)).tocsr()
    return matrix, volume
