"""Finite-volume heat solvers — the library's COMSOL substitute."""

from .axisym import AxisymField, solve_axisymmetric
from .cartesian import CartesianField, solve_cartesian
from .mesh import centers, graded_mesh, layered_mesh, refine, unique_breakpoints
from .reference import AXISYM_PRESETS, CARTESIAN_PRESETS, FEMReference
from .voxelize import (
    AxisymGrids,
    CartesianGrids,
    build_axisym_grids,
    build_cartesian_grids,
    grid_via_positions,
)

__all__ = [
    "solve_axisymmetric",
    "AxisymField",
    "solve_cartesian",
    "CartesianField",
    "FEMReference",
    "AXISYM_PRESETS",
    "CARTESIAN_PRESETS",
    "build_axisym_grids",
    "build_cartesian_grids",
    "grid_via_positions",
    "AxisymGrids",
    "CartesianGrids",
    "layered_mesh",
    "graded_mesh",
    "centers",
    "refine",
    "unique_breakpoints",
]
