"""Finite-volume heat solvers — the library's COMSOL substitute."""

from .axisym import (
    NATURAL_ORDERING_CUTOFF,
    AxisymField,
    assemble_axisymmetric,
    solve_axisymmetric,
    solve_axisymmetric_multi,
)
from .cartesian import CartesianField, solve_cartesian, solve_cartesian_multi
from .mesh import centers, graded_mesh, layered_mesh, refine, unique_breakpoints
from .reference import AXISYM_PRESETS, CARTESIAN_PRESETS, FEMReference
from .voxelize import (
    AxisymGeometry,
    AxisymGrids,
    CartesianGeometry,
    CartesianGrids,
    axisym_source_density,
    build_axisym_geometry,
    build_axisym_grids,
    build_cartesian_geometry,
    build_cartesian_grids,
    cartesian_source_density,
    grid_via_positions,
)

__all__ = [
    "NATURAL_ORDERING_CUTOFF",
    "assemble_axisymmetric",
    "solve_axisymmetric",
    "solve_axisymmetric_multi",
    "AxisymField",
    "solve_cartesian",
    "solve_cartesian_multi",
    "CartesianField",
    "FEMReference",
    "AXISYM_PRESETS",
    "CARTESIAN_PRESETS",
    "build_axisym_geometry",
    "build_axisym_grids",
    "build_cartesian_geometry",
    "build_cartesian_grids",
    "axisym_source_density",
    "cartesian_source_density",
    "grid_via_positions",
    "AxisymGeometry",
    "AxisymGrids",
    "CartesianGeometry",
    "CartesianGrids",
    "layered_mesh",
    "graded_mesh",
    "centers",
    "refine",
    "unique_breakpoints",
]
