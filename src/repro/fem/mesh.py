"""Structured 1-D mesh utilities for the finite-volume solvers.

Meshes are arrays of cell *edges*.  Both solvers build their grids as
tensor products of 1-D meshes that are aligned with every material
boundary (layer interfaces, via radius, liner radius), so no cell ever
straddles two materials.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..units import require_positive_int


def unique_breakpoints(points: list[float], *, tol: float = 1e-12) -> np.ndarray:
    """Sort and deduplicate breakpoints (within ``tol`` of each other)."""
    if not points:
        raise ValidationError("need at least one breakpoint")
    arr = np.sort(np.asarray(points, dtype=float))
    keep = [arr[0]]
    for p in arr[1:]:
        if p - keep[-1] > tol:
            keep.append(p)
    out = np.asarray(keep)
    if out.size < 2:
        raise ValidationError("breakpoints collapse to a single point")
    return out


def layered_mesh(
    breakpoints: list[float],
    target_cells: int,
    *,
    min_per_layer: int = 2,
    weights: list[float] | None = None,
) -> np.ndarray:
    """Cell edges spanning ``breakpoints`` with ~``target_cells`` cells.

    Cells are distributed across the intervals proportionally to interval
    length (or to ``weights``), with at least ``min_per_layer`` cells per
    interval so thin liners/bonds are always resolved.  Edges within each
    interval are uniform.
    """
    require_positive_int("target_cells", target_cells)
    require_positive_int("min_per_layer", min_per_layer)
    bp = unique_breakpoints(breakpoints)
    lengths = np.diff(bp)
    if weights is None:
        w = lengths / lengths.sum()
    else:
        if len(weights) != lengths.size:
            raise ValidationError(
                f"{lengths.size} intervals but {len(weights)} weights"
            )
        w = np.asarray(weights, dtype=float)
        if np.any(w <= 0):
            raise ValidationError("weights must be positive")
        w = w / w.sum()
    counts = np.maximum(min_per_layer, np.rint(target_cells * w).astype(int))
    edges: list[np.ndarray] = []
    for (z0, z1), n in zip(zip(bp[:-1], bp[1:]), counts):
        edges.append(np.linspace(z0, z1, n + 1)[:-1])
    return np.append(np.concatenate(edges), bp[-1])


def graded_mesh(
    start: float, end: float, n: int, *, ratio: float = 1.0, toward_start: bool = True
) -> np.ndarray:
    """Geometrically graded edges over [start, end].

    ``ratio`` is the size ratio of the largest to the smallest cell;
    ``toward_start`` puts the small cells at ``start``.
    """
    require_positive_int("n", n)
    if end <= start:
        raise ValidationError(f"end ({end}) must exceed start ({start})")
    if ratio <= 0.0:
        raise ValidationError("ratio must be positive")
    if abs(ratio - 1.0) < 1e-12 or n == 1:
        return np.linspace(start, end, n + 1)
    growth = ratio ** (1.0 / (n - 1))
    sizes = growth ** np.arange(n)
    sizes = sizes / sizes.sum() * (end - start)
    if not toward_start:
        sizes = sizes[::-1]
    return np.concatenate(([start], start + np.cumsum(sizes)))


def centers(edges: np.ndarray) -> np.ndarray:
    """Cell centres of an edge array."""
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError("edges must be a 1-D array of at least two points")
    return 0.5 * (edges[:-1] + edges[1:])


def refine(edges: np.ndarray, factor: int = 2) -> np.ndarray:
    """Split every cell into ``factor`` equal cells (for convergence tests)."""
    require_positive_int("factor", factor)
    edges = np.asarray(edges, dtype=float)
    out: list[float] = [float(edges[0])]
    for a, b in zip(edges[:-1], edges[1:]):
        out.extend(np.linspace(a, b, factor + 1)[1:].tolist())
    return np.asarray(out)
