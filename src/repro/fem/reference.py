"""The FEM reference model — the library's stand-in for the paper's COMSOL.

:class:`FEMReference` plugs the finite-volume solvers into the common
:class:`~repro.core.base.ThermalTSVModel` interface so experiments can
sweep it next to Models A/B/1-D.

Cluster handling mirrors the experiments' physics:

* the axisymmetric back-end reduces an n-via cluster to a unit cell of
  area A0/n carrying 1/n of the heat (uniformly distributed vias and
  power make the cell boundaries adiabatic symmetry planes);
* the Cartesian back-end places all n vias explicitly on a uniform grid
  inside the square footprint — slower, used as a cross-check.
"""

from __future__ import annotations

from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSVCluster
from .axisym import solve_axisymmetric
from .cartesian import solve_cartesian
from .voxelize import build_axisym_grids, build_cartesian_grids, grid_via_positions
from ..core.base import ThermalTSVModel
from ..core.result import ModelResult

#: resolution presets: (nr, nz) for axisym, (nx, ny, nz) for cartesian
AXISYM_PRESETS = {
    "coarse": (24, 60),
    "medium": (36, 90),
    "fine": (56, 140),
}
CARTESIAN_PRESETS = {
    "coarse": (24, 24, 48),
    "medium": (36, 36, 72),
    "fine": (52, 52, 104),
}


class FEMReference(ThermalTSVModel):
    """Finite-volume reference solution (the COMSOL substitute).

    Parameters
    ----------
    resolution:
        ``"coarse"`` / ``"medium"`` / ``"fine"`` or an explicit cell-count
        tuple — (nr, nz) for the axisymmetric back-end, (nx, ny, nz) for
        the Cartesian one.
    solver:
        ``"axisym"`` (default, fast) or ``"cartesian"``.
    """

    def __init__(
        self,
        resolution: str | tuple[int, ...] = "medium",
        *,
        solver: str = "axisym",
    ) -> None:
        if solver not in ("axisym", "cartesian"):
            raise ValidationError(f"solver must be 'axisym' or 'cartesian', got {solver!r}")
        self.solver = solver
        presets = AXISYM_PRESETS if solver == "axisym" else CARTESIAN_PRESETS
        if isinstance(resolution, str):
            try:
                self.resolution = presets[resolution]
            except KeyError:
                raise ValidationError(
                    f"unknown resolution {resolution!r}; known: {sorted(presets)}"
                ) from None
        else:
            expected = 2 if solver == "axisym" else 3
            if len(resolution) != expected:
                raise ValidationError(
                    f"{solver} resolution needs {expected} cell counts, got {resolution!r}"
                )
            self.resolution = tuple(int(n) for n in resolution)
        self.name = "fem" if solver == "axisym" else "fem3d"

    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        if self.solver == "axisym":
            return self._solve_axisym(stack, via, power)
        return self._solve_cartesian(stack, via, power)

    def _solve_axisym(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        nr, nz = self.resolution
        n = via.count
        grids = build_axisym_grids(
            stack,
            via.member,
            power,
            cell_area=stack.footprint_area / n,
            power_scale=1.0 / n,
            nr=nr,
            nz=nz,
        )
        field = solve_axisymmetric(
            grids.r_edges, grids.z_edges, grids.conductivity, grids.source_density
        )
        plane_rises = tuple(
            field.max_rise_in_band(z0, z1) for z0, z1 in grids.plane_bands
        )
        return ModelResult(
            model_name=self.name,
            max_rise=field.max_rise,
            plane_rises=plane_rises,
            sink_temperature=stack.sink_temperature,
            solve_time=field.solve_time,
            n_unknowns=field.n_unknowns,
            metadata={
                "solver": "axisym",
                "nr": field.nr,
                "nz": field.nz,
                "cluster_count": n,
                "unit_cell": n > 1,
            },
        )

    def _solve_cartesian(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        nx, ny, nz = self.resolution
        side = stack.footprint_side
        positions = grid_via_positions(via.count, side, side)
        grids = build_cartesian_grids(
            stack,
            via.member,
            power,
            via_positions=positions,
            nx=nx,
            ny=ny,
            nz=nz,
        )
        field = solve_cartesian(
            grids.x_edges,
            grids.y_edges,
            grids.z_edges,
            grids.conductivity,
            grids.source_density,
        )
        plane_rises = tuple(
            field.max_rise_in_band(z0, z1) for z0, z1 in grids.plane_bands
        )
        return ModelResult(
            model_name=self.name,
            max_rise=field.max_rise,
            plane_rises=plane_rises,
            sink_temperature=stack.sink_temperature,
            solve_time=field.solve_time,
            n_unknowns=field.n_unknowns,
            metadata={
                "solver": "cartesian",
                "shape": tuple(int(s - 1) for s in (
                    grids.x_edges.size, grids.y_edges.size, grids.z_edges.size
                )),
                "cluster_count": via.count,
                "via_positions": positions,
            },
        )
