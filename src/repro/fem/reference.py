"""The FEM reference model — the library's stand-in for the paper's COMSOL.

:class:`FEMReference` plugs the finite-volume solvers into the common
:class:`~repro.core.base.ThermalTSVModel` interface so experiments can
sweep it next to Models A/B/1-D.

Cluster handling mirrors the experiments' physics:

* the axisymmetric back-end reduces an n-via cluster to a unit cell of
  area A0/n carrying 1/n of the heat (uniformly distributed vias and
  power make the cell boundaries adiabatic symmetry planes);
* the Cartesian back-end places all n vias explicitly on a uniform grid
  inside the square footprint — slower, used as a cross-check.

The FEM system matrix depends only on (mesh, conductivity) — i.e. on the
stack, the via and the resolution — while the power specification enters
the right-hand side alone.  :meth:`FEMReference.assembly_key` exposes that
identity to the matrix-batched scheduler and
:meth:`FEMReference.solve_batch` exploits it: a group of points sharing
one geometry voxelises, assembles and factorises once and back-substitutes
per point, bit-for-bit identical to per-point solves.

One tier below, :meth:`FEMReference.batch_class_key` declares small
axisymmetric meshes *stackable*: points whose matrices differ (geometry
sweeps) but share a mesh topology assemble via
:meth:`FEMReference.assemble_system` and solve as one block-diagonal
natural-ordering factorisation — see
:func:`repro.network.solve.solve_sparse_stacked`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from ..perf import content_key, model_key
from .axisym import (
    NATURAL_ORDERING_CUTOFF,
    AxisymField,
    assemble_axisymmetric,
    solve_axisymmetric,
    solve_axisymmetric_multi,
)
from .cartesian import solve_cartesian, solve_cartesian_multi
from .voxelize import (
    axisym_source_density,
    build_axisym_geometry,
    build_axisym_grids,
    build_cartesian_geometry,
    build_cartesian_grids,
    cartesian_source_density,
    grid_via_positions,
)
from ..core.base import AssembledSystem, ThermalTSVModel
from ..core.result import ModelResult

#: resolution presets: (nr, nz) for axisym, (nx, ny, nz) for cartesian
AXISYM_PRESETS = {
    "coarse": (24, 60),
    "medium": (36, 90),
    "fine": (56, 140),
}
CARTESIAN_PRESETS = {
    "coarse": (24, 24, 48),
    "medium": (36, 36, 72),
    "fine": (52, 52, 104),
}


class FEMReference(ThermalTSVModel):
    """Finite-volume reference solution (the COMSOL substitute).

    Parameters
    ----------
    resolution:
        ``"coarse"`` / ``"medium"`` / ``"fine"`` or an explicit cell-count
        tuple — (nr, nz) for the axisymmetric back-end, (nx, ny, nz) for
        the Cartesian one.
    solver:
        ``"axisym"`` (default, fast) or ``"cartesian"``.
    """

    def __init__(
        self,
        resolution: str | tuple[int, ...] = "medium",
        *,
        solver: str = "axisym",
    ) -> None:
        if solver not in ("axisym", "cartesian"):
            raise ValidationError(f"solver must be 'axisym' or 'cartesian', got {solver!r}")
        self.solver = solver
        presets = AXISYM_PRESETS if solver == "axisym" else CARTESIAN_PRESETS
        if isinstance(resolution, str):
            try:
                self.resolution = presets[resolution]
            except KeyError:
                raise ValidationError(
                    f"unknown resolution {resolution!r}; known: {sorted(presets)}"
                ) from None
        else:
            expected = 2 if solver == "axisym" else 3
            if len(resolution) != expected:
                raise ValidationError(
                    f"{solver} resolution needs {expected} cell counts, got {resolution!r}"
                )
            self.resolution = tuple(int(n) for n in resolution)
        self.name = "fem" if solver == "axisym" else "fem3d"

    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        if self.solver == "axisym":
            return self._solve_axisym(stack, via, power)
        return self._solve_cartesian(stack, via, power)

    # ------------------------------------------------------------------
    # matrix-batched interface
    # ------------------------------------------------------------------
    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of the FEM system matrix at (stack, via).

        The mesh and per-cell conductivity — hence the assembled matrix —
        are fully determined by the model configuration, the stack and
        the (cluster-normalised) via; power only shapes the RHS.  Points
        sharing this key solve the identical matrix.
        """
        return content_key(
            "fem_assembly/v1", model_key(self), stack, as_cluster(via)
        )

    def solve_batch(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        powers: Sequence[PowerSpec],
    ) -> list[ModelResult]:
        """Solve many power specs against one geometry's matrix.

        Voxelises (geometry half only), assembles and factorises once,
        then back-substitutes one RHS per power — results are bit-for-bit
        identical to per-point :meth:`solve` calls (wall-clock
        ``solve_time`` excepted).
        """
        powers = list(powers)
        if not powers:
            return []
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        if self.solver == "axisym":
            return self._solve_axisym_batch(stack, cluster, powers)
        return self._solve_cartesian_batch(stack, cluster, powers)

    def batch_class_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Stack axisymmetric meshes of identical topology.

        The finite-volume matrix's sparsity pattern is fixed by the cell
        counts alone — geometry and materials only change the coefficient
        values — so points whose *voxelised* meshes (which refine past
        the nominal resolution to honour layer breakpoints) end up with
        the same (nr, nz) share a structure and may ride the
        block-diagonal stacked sparse tier.  That tier factorises with
        natural ordering, whose fill-in premium is only acceptable on
        small meshes: systems past
        :data:`~repro.fem.axisym.NATURAL_ORDERING_CUTOFF` unknowns (the
        ``medium`` preset and up) opt out and stay on the multi-RHS
        matrix-group plane, as does the Cartesian back-end (3-D
        fill-in).  The mesh frame comes from the voxel-frame cache, so
        repeated key probes cost a cache hit, not a meshing pass.
        """
        if self.solver != "axisym":
            return None
        try:
            cluster = as_cluster(via)
            validate_tsv_in_stack(stack, cluster.member)
            nr, nz = self.resolution
            geometry = build_axisym_geometry(
                stack,
                cluster.member,
                cell_area=stack.footprint_area / cluster.count,
                nr=nr,
                nz=nz,
            )
        except ValidationError:
            return None
        shape = (geometry.r_edges.size - 1, geometry.z_edges.size - 1)
        if shape[0] * shape[1] > NATURAL_ORDERING_CUTOFF:
            return None
        return content_key("stacked_class/fem_axisym/v1", shape)

    def assemble_system(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> AssembledSystem | None:
        """Lift one point's sparse system out for the stacked solve tier.

        Voxelises and assembles exactly as :meth:`solve` would; the
        stacked solve's natural-ordering factor matches the solo path's
        (both sides of :data:`~repro.fem.axisym.NATURAL_ORDERING_CUTOFF`
        agree by construction), so ``finish`` reproduces the solo
        :class:`~repro.core.result.ModelResult` bit-for-bit.
        """
        if self.batch_class_key(stack, via) is None:
            return None
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        nr, nz = self.resolution
        n = cluster.count
        start = time.perf_counter()
        grids = build_axisym_grids(
            stack,
            cluster.member,
            power,
            cell_area=stack.footprint_area / n,
            power_scale=1.0 / n,
            nr=nr,
            nz=nz,
        )
        matrix, volume = assemble_axisymmetric(
            grids.r_edges, grids.z_edges, grids.conductivity
        )
        rhs = (grids.source_density * volume).ravel()
        mesh_nr, mesh_nz = grids.r_edges.size - 1, grids.z_edges.size - 1

        def finish(temps: np.ndarray) -> ModelResult:
            field = AxisymField(
                r_edges=grids.r_edges,
                z_edges=grids.z_edges,
                temperatures=np.asarray(temps, dtype=float).reshape(
                    mesh_nr, mesh_nz
                ),
                solve_time=time.perf_counter() - start,
                conductivity=grids.conductivity,
            )
            return self._axisym_result(stack, n, field, grids.plane_bands)

        return AssembledSystem(matrix=matrix, rhs=rhs, finish=finish)

    # ------------------------------------------------------------------
    # axisymmetric back-end
    # ------------------------------------------------------------------
    def _axisym_result(
        self, stack: Stack3D, n: int, field, plane_bands
    ) -> ModelResult:
        plane_rises = tuple(
            field.max_rise_in_band(z0, z1) for z0, z1 in plane_bands
        )
        return ModelResult(
            model_name=self.name,
            max_rise=field.max_rise,
            plane_rises=plane_rises,
            sink_temperature=stack.sink_temperature,
            solve_time=field.solve_time,
            n_unknowns=field.n_unknowns,
            metadata={
                "solver": "axisym",
                "nr": field.nr,
                "nz": field.nz,
                "cluster_count": n,
                "unit_cell": n > 1,
            },
        )

    def _solve_axisym(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        nr, nz = self.resolution
        n = via.count
        grids = build_axisym_grids(
            stack,
            via.member,
            power,
            cell_area=stack.footprint_area / n,
            power_scale=1.0 / n,
            nr=nr,
            nz=nz,
        )
        field = solve_axisymmetric(
            grids.r_edges, grids.z_edges, grids.conductivity, grids.source_density
        )
        return self._axisym_result(stack, n, field, grids.plane_bands)

    def _solve_axisym_batch(
        self, stack: Stack3D, via: TSVCluster, powers: list[PowerSpec]
    ) -> list[ModelResult]:
        nr, nz = self.resolution
        n = via.count
        geometry = build_axisym_geometry(
            stack,
            via.member,
            cell_area=stack.footprint_area / n,
            nr=nr,
            nz=nz,
        )
        sources = [
            axisym_source_density(
                stack, via.member, power, 1.0 / n,
                geometry.r_edges, geometry.z_edges,
            )
            for power in powers
        ]
        fields = solve_axisymmetric_multi(
            geometry.r_edges, geometry.z_edges, geometry.conductivity, sources
        )
        return [
            self._axisym_result(stack, n, field, geometry.plane_bands)
            for field in fields
        ]

    # ------------------------------------------------------------------
    # Cartesian back-end
    # ------------------------------------------------------------------
    def _cartesian_result(
        self, stack: Stack3D, via: TSVCluster, positions, field, plane_bands
    ) -> ModelResult:
        plane_rises = tuple(
            field.max_rise_in_band(z0, z1) for z0, z1 in plane_bands
        )
        return ModelResult(
            model_name=self.name,
            max_rise=field.max_rise,
            plane_rises=plane_rises,
            sink_temperature=stack.sink_temperature,
            solve_time=field.solve_time,
            n_unknowns=field.n_unknowns,
            metadata={
                "solver": "cartesian",
                "shape": tuple(int(s - 1) for s in (
                    field.x_edges.size, field.y_edges.size, field.z_edges.size
                )),
                "cluster_count": via.count,
                "via_positions": positions,
            },
        )

    def _solve_cartesian(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        nx, ny, nz = self.resolution
        side = stack.footprint_side
        positions = grid_via_positions(via.count, side, side)
        grids = build_cartesian_grids(
            stack,
            via.member,
            power,
            via_positions=positions,
            nx=nx,
            ny=ny,
            nz=nz,
        )
        field = solve_cartesian(
            grids.x_edges,
            grids.y_edges,
            grids.z_edges,
            grids.conductivity,
            grids.source_density,
        )
        return self._cartesian_result(
            stack, via, positions, field, grids.plane_bands
        )

    def _solve_cartesian_batch(
        self, stack: Stack3D, via: TSVCluster, powers: list[PowerSpec]
    ) -> list[ModelResult]:
        nx, ny, nz = self.resolution
        side = stack.footprint_side
        positions = grid_via_positions(via.count, side, side)
        geometry = build_cartesian_geometry(
            stack,
            via.member,
            via_positions=positions,
            nx=nx,
            ny=ny,
            nz=nz,
        )
        sources = [
            cartesian_source_density(
                stack, via.member, power,
                geometry.x_edges, geometry.y_edges, geometry.z_edges,
                geometry.outer_frac,
            )
            for power in powers
        ]
        fields = solve_cartesian_multi(
            geometry.x_edges, geometry.y_edges, geometry.z_edges,
            geometry.conductivity, sources,
        )
        return [
            self._cartesian_result(
                stack, via, positions, field, geometry.plane_bands
            )
            for field in fields
        ]
