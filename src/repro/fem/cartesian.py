"""3-D Cartesian steady-state heat conduction, finite-volume method.

Complements the axisymmetric solver for geometries a single symmetric via
cannot represent: multiple vias at arbitrary positions (the Fig. 7 cluster
cross-check) and non-uniform floorplan power maps (the planning extension).

Same discretisation choices as :mod:`repro.fem.axisym`: cell-centred,
harmonic-mean face conductances, Dirichlet heat sink at z = 0, adiabatic
sides and top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError, ValidationError
from ..network.solve import solve_sparse


@dataclass(frozen=True)
class CartesianField:
    """Solution field on the (nx × ny × nz) cell grid."""

    x_edges: np.ndarray
    y_edges: np.ndarray
    z_edges: np.ndarray
    temperatures: np.ndarray  # (nx, ny, nz) kelvin rise
    solve_time: float

    @property
    def n_unknowns(self) -> int:
        return self.temperatures.size

    @property
    def max_rise(self) -> float:
        return float(self.temperatures.max())

    def max_rise_in_band(self, z0: float, z1: float) -> float:
        """Maximum rise among cells whose centres lie in [z0, z1]."""
        zc = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        mask = (zc >= z0) & (zc <= z1)
        if not mask.any():
            raise ValidationError(f"no cell centres in band [{z0}, {z1}]")
        return float(self.temperatures[:, :, mask].max())

    def top_map(self) -> np.ndarray:
        """Temperature map of the topmost cell layer (hotspot view)."""
        return self.temperatures[:, :, -1].copy()


def _check_grid(edges: np.ndarray, name: str) -> np.ndarray:
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError(f"{name} must be a 1-D array of at least 2 edges")
    if np.any(np.diff(edges) <= 0):
        raise ValidationError(f"{name} must be strictly increasing")
    return edges


def solve_cartesian(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
    source_density: np.ndarray,
) -> CartesianField:
    """Solve ∇·(k∇T) = −q on a structured 3-D grid.

    ``conductivity`` and ``source_density`` are per-cell arrays of shape
    (nx, ny, nz); the z = 0 face is the isothermal heat sink.
    """
    x_edges = _check_grid(x_edges, "x_edges")
    y_edges = _check_grid(y_edges, "y_edges")
    z_edges = _check_grid(z_edges, "z_edges")
    nx, ny, nz = x_edges.size - 1, y_edges.size - 1, z_edges.size - 1
    k = np.asarray(conductivity, dtype=float)
    q = np.asarray(source_density, dtype=float)
    if k.shape != (nx, ny, nz) or q.shape != (nx, ny, nz):
        raise ValidationError(
            f"conductivity/source shapes must be ({nx}, {ny}, {nz}), "
            f"got {k.shape}/{q.shape}"
        )
    if np.any(k <= 0):
        raise SolverError("conductivity must be positive everywhere")

    start = time.perf_counter()
    dx, dy, dz = np.diff(x_edges), np.diff(y_edges), np.diff(z_edges)
    volume = dx[:, None, None] * dy[None, :, None] * dz[None, None, :]
    n = nx * ny * nz
    linear = np.arange(n).reshape(nx, ny, nz)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    diag = np.zeros((nx, ny, nz))

    def couple(axis: int, spacing: np.ndarray, face_area: np.ndarray) -> None:
        """Stamp the face conductances along one axis."""
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = slice(None, -1)
        sl_hi[axis] = slice(1, None)
        sl_lo, sl_hi = tuple(sl_lo), tuple(sl_hi)
        shape = [1, 1, 1]
        shape[axis] = spacing.size - 1
        half_lo = (0.5 * spacing[:-1]).reshape(shape)
        half_hi = (0.5 * spacing[1:]).reshape(shape)
        g = face_area / (half_lo / k[sl_lo] + half_hi / k[sl_hi])
        a = linear[sl_lo].ravel()
        b = linear[sl_hi].ravel()
        gg = g.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-gg, -gg))
        np.add.at(diag, tuple(np.unravel_index(a, diag.shape)), gg)
        np.add.at(diag, tuple(np.unravel_index(b, diag.shape)), gg)

    if nx > 1:
        area = dy[None, :, None] * dz[None, None, :] * np.ones((nx - 1, 1, 1))
        couple(0, dx, area)
    if ny > 1:
        area = dx[:, None, None] * dz[None, None, :] * np.ones((1, ny - 1, 1))
        couple(1, dy, area)
    if nz > 1:
        area = dx[:, None, None] * dy[None, :, None] * np.ones((1, 1, nz - 1))
        couple(2, dz, area)

    # bottom Dirichlet
    area_bottom = dx[:, None] * dy[None, :]
    diag[:, :, 0] += area_bottom * k[:, :, 0] / (0.5 * dz[0])

    all_idx = linear.ravel()
    all_rows = np.concatenate(rows + [all_idx])
    all_cols = np.concatenate(cols + [all_idx])
    all_vals = np.concatenate(vals + [diag.ravel()])
    matrix = sp.coo_matrix((all_vals, (all_rows, all_cols)), shape=(n, n)).tocsr()
    rhs = (q * volume).ravel()

    temps = solve_sparse(matrix, rhs).reshape(nx, ny, nz)
    elapsed = time.perf_counter() - start
    return CartesianField(
        x_edges=x_edges,
        y_edges=y_edges,
        z_edges=z_edges,
        temperatures=temps,
        solve_time=elapsed,
    )
