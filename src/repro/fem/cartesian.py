"""3-D Cartesian steady-state heat conduction, finite-volume method.

Complements the axisymmetric solver for geometries a single symmetric via
cannot represent: multiple vias at arbitrary positions (the Fig. 7 cluster
cross-check) and non-uniform floorplan power maps (the planning extension).

Same discretisation choices as :mod:`repro.fem.axisym`: cell-centred,
harmonic-mean face conductances, Dirichlet heat sink at z = 0, adiabatic
sides and top.

:func:`solve_cartesian_multi` is the matrix-batched entry point: many
source grids against one (mesh, conductivity) pair assemble and factorise
the — expensive, 3-D — system exactly once and back-substitute per
right-hand side, bit-for-bit identical to per-point
:func:`solve_cartesian` calls.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import SolverError, ValidationError
from ..network.solve import solve_sparse, solve_sparse_multi


@dataclass(frozen=True)
class CartesianField:
    """Solution field on the (nx × ny × nz) cell grid."""

    x_edges: np.ndarray
    y_edges: np.ndarray
    z_edges: np.ndarray
    temperatures: np.ndarray  # (nx, ny, nz) kelvin rise
    solve_time: float

    @property
    def n_unknowns(self) -> int:
        return self.temperatures.size

    @property
    def max_rise(self) -> float:
        return float(self.temperatures.max())

    def max_rise_in_band(self, z0: float, z1: float) -> float:
        """Maximum rise among cells whose centres lie in [z0, z1]."""
        zc = 0.5 * (self.z_edges[:-1] + self.z_edges[1:])
        mask = (zc >= z0) & (zc <= z1)
        if not mask.any():
            raise ValidationError(f"no cell centres in band [{z0}, {z1}]")
        return float(self.temperatures[:, :, mask].max())

    def top_map(self) -> np.ndarray:
        """Temperature map of the topmost cell layer (hotspot view)."""
        return self.temperatures[:, :, -1].copy()


def _check_grid(edges: np.ndarray, name: str) -> np.ndarray:
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError(f"{name} must be a 1-D array of at least 2 edges")
    if np.any(np.diff(edges) <= 0):
        raise ValidationError(f"{name} must be strictly increasing")
    return edges


def _check_cartesian_inputs(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    x_edges = _check_grid(x_edges, "x_edges")
    y_edges = _check_grid(y_edges, "y_edges")
    z_edges = _check_grid(z_edges, "z_edges")
    nx, ny, nz = x_edges.size - 1, y_edges.size - 1, z_edges.size - 1
    k = np.asarray(conductivity, dtype=float)
    if k.shape != (nx, ny, nz):
        raise ValidationError(
            f"conductivity shape must be ({nx}, {ny}, {nz}), got {k.shape}"
        )
    if np.any(k <= 0):
        raise SolverError("conductivity must be positive everywhere")
    return x_edges, y_edges, z_edges, k


def _check_cartesian_source(
    source_density: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    q = np.asarray(source_density, dtype=float)
    if q.shape != shape:
        raise ValidationError(
            f"source shape must be {shape}, got {q.shape}"
        )
    return q


def solve_cartesian(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
    source_density: np.ndarray,
) -> CartesianField:
    """Solve ∇·(k∇T) = −q on a structured 3-D grid.

    ``conductivity`` and ``source_density`` are per-cell arrays of shape
    (nx, ny, nz); the z = 0 face is the isothermal heat sink.
    """
    x_edges, y_edges, z_edges, k = _check_cartesian_inputs(
        x_edges, y_edges, z_edges, conductivity
    )
    nx, ny, nz = x_edges.size - 1, y_edges.size - 1, z_edges.size - 1
    q = _check_cartesian_source(source_density, (nx, ny, nz))

    start = time.perf_counter()
    matrix, volume = _assemble_cartesian_system(x_edges, y_edges, z_edges, k)
    rhs = (q * volume).ravel()
    temps = solve_sparse(matrix, rhs).reshape(nx, ny, nz)
    elapsed = time.perf_counter() - start
    return CartesianField(
        x_edges=x_edges,
        y_edges=y_edges,
        z_edges=z_edges,
        temperatures=temps,
        solve_time=elapsed,
    )


def solve_cartesian_multi(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    conductivity: np.ndarray,
    source_densities: Sequence[np.ndarray],
) -> list[CartesianField]:
    """Solve one Cartesian system against many source grids.

    One assembly + one factorisation, one back-substitution per source
    grid; field ``i`` is bit-for-bit identical to
    ``solve_cartesian(..., source_densities[i])``.  The recorded
    ``solve_time`` is the batch's wall-clock share per field.
    """
    x_edges, y_edges, z_edges, k = _check_cartesian_inputs(
        x_edges, y_edges, z_edges, conductivity
    )
    nx, ny, nz = x_edges.size - 1, y_edges.size - 1, z_edges.size - 1
    sources = [
        _check_cartesian_source(q, (nx, ny, nz)) for q in source_densities
    ]
    if not sources:
        return []

    start = time.perf_counter()
    matrix, volume = _assemble_cartesian_system(x_edges, y_edges, z_edges, k)
    rhs_block = np.column_stack([(q * volume).ravel() for q in sources])
    temps_block = solve_sparse_multi(matrix, rhs_block)
    elapsed = (time.perf_counter() - start) / len(sources)
    return [
        CartesianField(
            x_edges=x_edges,
            y_edges=y_edges,
            z_edges=z_edges,
            temperatures=temps_block[:, i].reshape(nx, ny, nz),
            solve_time=elapsed,
        )
        for i in range(len(sources))
    ]


def _assemble_cartesian_system(
    x_edges: np.ndarray,
    y_edges: np.ndarray,
    z_edges: np.ndarray,
    k: np.ndarray,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """(conductance matrix, cell volumes) of the validated system."""
    nx, ny, nz = x_edges.size - 1, y_edges.size - 1, z_edges.size - 1
    dx, dy, dz = np.diff(x_edges), np.diff(y_edges), np.diff(z_edges)
    volume = dx[:, None, None] * dy[None, :, None] * dz[None, None, :]
    n = nx * ny * nz
    linear = np.arange(n).reshape(nx, ny, nz)

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    diag = np.zeros((nx, ny, nz))

    def couple(axis: int, spacing: np.ndarray, face_area: np.ndarray) -> None:
        """Stamp the face conductances along one axis."""
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = slice(None, -1)
        sl_hi[axis] = slice(1, None)
        sl_lo, sl_hi = tuple(sl_lo), tuple(sl_hi)
        shape = [1, 1, 1]
        shape[axis] = spacing.size - 1
        half_lo = (0.5 * spacing[:-1]).reshape(shape)
        half_hi = (0.5 * spacing[1:]).reshape(shape)
        g = face_area / (half_lo / k[sl_lo] + half_hi / k[sl_hi])
        a = linear[sl_lo].ravel()
        b = linear[sl_hi].ravel()
        gg = g.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.extend((-gg, -gg))
        np.add.at(diag, tuple(np.unravel_index(a, diag.shape)), gg)
        np.add.at(diag, tuple(np.unravel_index(b, diag.shape)), gg)

    if nx > 1:
        area = dy[None, :, None] * dz[None, None, :] * np.ones((nx - 1, 1, 1))
        couple(0, dx, area)
    if ny > 1:
        area = dx[:, None, None] * dz[None, None, :] * np.ones((1, ny - 1, 1))
        couple(1, dy, area)
    if nz > 1:
        area = dx[:, None, None] * dy[None, :, None] * np.ones((1, 1, nz - 1))
        couple(2, dz, area)

    # bottom Dirichlet
    area_bottom = dx[:, None] * dy[None, :]
    diag[:, :, 0] += area_bottom * k[:, :, 0] / (0.5 * dz[0])

    all_idx = linear.ravel()
    all_rows = np.concatenate(rows + [all_idx])
    all_cols = np.concatenate(cols + [all_idx])
    all_vals = np.concatenate(vals + [diag.ravel()])
    matrix = sp.coo_matrix((all_vals, (all_rows, all_cols)), shape=(n, n)).tocsr()
    return matrix, volume
