"""Primitive thermal-resistance formulas.

All of the paper's expressions reduce to three one-dimensional conduction
primitives:

* a slab conducting through its thickness (:func:`slab_resistance`) —
  the R1/R4/R7 bulk paths and the 1-D baseline;
* a cylinder conducting along its axis (:func:`cylinder_axial_resistance`)
  — the R2/R5/R8 via-metal paths;
* a cylindrical shell conducting radially
  (:func:`cylindrical_shell_resistance`) — the R3/R6/R9 liner paths,
  i.e. the integral in Eq. (9).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..errors import ValidationError
from ..units import require_positive


def slab_resistance(thickness: float, conductivity: float, area: float) -> float:
    """R = t/(k·A) of a slab conducting through its thickness, K/W."""
    require_positive("thickness", thickness)
    require_positive("conductivity", conductivity)
    require_positive("area", area)
    return thickness / (conductivity * area)


def cylinder_axial_resistance(
    length: float, conductivity: float, radius: float
) -> float:
    """R = L/(k·πr²) of a solid cylinder conducting along its axis, K/W."""
    require_positive("length", length)
    require_positive("conductivity", conductivity)
    require_positive("radius", radius)
    return length / (conductivity * math.pi * radius**2)


def cylindrical_shell_resistance(
    r_inner: float, r_outer: float, conductivity: float, height: float
) -> float:
    """Radial conduction through a cylindrical shell, K/W.

    This is the closed form of the paper's Eq. (9) integral:
    R = ln(r_outer/r_inner) / (2π·k·h).
    """
    require_positive("r_inner", r_inner)
    require_positive("r_outer", r_outer)
    require_positive("conductivity", conductivity)
    require_positive("height", height)
    if r_outer <= r_inner:
        raise ValidationError(
            f"shell outer radius ({r_outer}) must exceed inner radius ({r_inner})"
        )
    return math.log(r_outer / r_inner) / (2.0 * math.pi * conductivity * height)


def annulus_axial_resistance(
    length: float, conductivity: float, r_inner: float, r_outer: float
) -> float:
    """Axial conduction along a ring (the liner in the 1-D baseline), K/W."""
    require_positive("length", length)
    require_positive("conductivity", conductivity)
    require_positive("r_inner", r_inner)
    if r_outer <= r_inner:
        raise ValidationError(
            f"annulus outer radius ({r_outer}) must exceed inner radius ({r_inner})"
        )
    area = math.pi * (r_outer**2 - r_inner**2)
    return length / (conductivity * area)


def series(resistances: Iterable[float]) -> float:
    """Series combination ΣR; an empty iterable is an error."""
    values = list(resistances)
    if not values:
        raise ValidationError("series() needs at least one resistance")
    for r in values:
        require_positive("resistance", r)
    return sum(values)


def parallel(resistances: Iterable[float]) -> float:
    """Parallel combination 1/Σ(1/R); an empty iterable is an error."""
    values = list(resistances)
    if not values:
        raise ValidationError("parallel() needs at least one resistance")
    total = 0.0
    for r in values:
        require_positive("resistance", r)
        total += 1.0 / r
    return 1.0 / total
