"""Per-plane aggregate resistances for Model B (Section III).

Model B distributes, within each plane j, the same physics Model A lumps —
but *without* fitting coefficients ("obtained similar to (7)-(15) without
k1 and k2").  The per-plane aggregates are:

* ``metal_total``  (RM_j) — via metal over the plane's via span;
* ``liner_total``  (RL_j) — liner shell over the plane's via span;
* ``ild_bulk``     (R_ILDj) — vertical bulk resistance of the ILD
  (plane 1 additionally includes the l_ext dip into the substrate);
* ``substrate_bulk`` (R_Sj) — vertical bulk resistance of the substrate
  (``None`` for plane 1, whose substrate is the lumped Rs);
* ``bond_bulk``    (R_Bj) — vertical bulk resistance of the bond below
  plane j (``None`` for plane 1), lumped into the first substrate segment
  per Eq. (21).

The ladder assembly (how these are divided into π-segments) lives in
:mod:`repro.core.model_b`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from ..geometry import Stack3D, TSV, TSVCluster, as_cluster
from ..units import require_positive
from .model_a_set import _bulk_area, _liner_lateral


@dataclass(frozen=True, slots=True)
class PlaneLadderQuantities:
    """Aggregate (undivided) resistances of one plane's π-ladder, K/W."""

    metal_total: float
    liner_total: float
    ild_bulk: float
    substrate_bulk: float | None
    bond_bulk: float | None
    span: float

    @property
    def is_first_plane(self) -> bool:
        return self.substrate_bulk is None


@dataclass(frozen=True, slots=True)
class ModelBResistances:
    """Model B aggregates for all planes plus the lumped Rs."""

    planes: tuple[PlaneLadderQuantities, ...]
    rs: float

    @property
    def n_planes(self) -> int:
        return len(self.planes)


def compute_model_b_resistances(
    stack: Stack3D,
    via: TSV | TSVCluster,
    *,
    bond_factor: float = 1.0,
    exact_area: bool = False,
) -> ModelBResistances:
    """Evaluate the coefficient-free per-plane aggregates of Model B.

    Parameters
    ----------
    stack, via:
        Geometry, as for Model A.
    bond_factor:
        Effective bond conductance multiplier (the case study's c_{1,2};
        1.0 for the block experiments).  This is a material adaptation,
        not a fitting coefficient — Model B stays k1/k2-free.
    exact_area:
        Subtract the true n-via occupied area from the bulk area.
    """
    require_positive("bond_factor", bond_factor)
    cluster = as_cluster(via)
    tsv = cluster.base
    if tsv.extension >= stack.planes[0].substrate.thickness:
        raise GeometryError(
            f"via extension {tsv.extension} exceeds the first substrate "
            f"thickness {stack.planes[0].substrate.thickness}"
        )
    area = _bulk_area(stack, cluster, exact_area=exact_area)
    metal_area = math.pi * tsv.radius**2
    k_fill = tsv.fill.thermal_conductivity

    planes: list[PlaneLadderQuantities] = []
    for j, plane in stack.iter_planes():
        t_ild = plane.ild.thickness
        k_ild = plane.ild.conductivity
        t_si = plane.substrate.thickness
        k_si = plane.substrate.conductivity
        if j == 0:
            span = t_ild + tsv.extension
            ild_bulk = (t_ild / k_ild + tsv.extension / k_si) / area
            substrate_bulk = None
            bond_bulk = None
        else:
            bond = stack.bond_below(j)
            k_bond = bond.material.thermal_conductivity * bond_factor
            last = j == stack.n_planes - 1
            span = (t_si + bond.thickness) if last else (t_ild + t_si + bond.thickness)
            ild_bulk = t_ild / (k_ild * area)
            substrate_bulk = t_si / (k_si * area)
            bond_bulk = bond.thickness / (k_bond * area)
        planes.append(
            PlaneLadderQuantities(
                metal_total=span / (k_fill * metal_area),
                liner_total=_liner_lateral(cluster, span, 1.0),
                ild_bulk=ild_bulk,
                substrate_bulk=substrate_bulk,
                bond_bulk=bond_bulk,
                span=span,
            )
        )

    first_substrate = stack.planes[0].substrate
    rs = (first_substrate.thickness - tsv.extension) / (
        first_substrate.conductivity * stack.footprint_area
    )
    return ModelBResistances(planes=tuple(planes), rs=rs)
