"""Thermal-resistance formulas: Eqs. (7)–(16), (21) aggregates, Eq. (22)
cluster transform and conduction primitives."""

from .fitting import FittingCoefficients
from .model_a_set import (
    ModelAResistances,
    PlaneResistances,
    compute_model_a_resistances,
)
from .model_b_set import (
    ModelBResistances,
    PlaneLadderQuantities,
    compute_model_b_resistances,
)
from .primitives import (
    annulus_axial_resistance,
    cylinder_axial_resistance,
    cylindrical_shell_resistance,
    parallel,
    series,
    slab_resistance,
)
from .spreading import (
    finite_slab_spreading,
    semi_infinite_spreading,
    truncated_cone_resistance,
    via_cell_spreading,
)

__all__ = [
    "FittingCoefficients",
    "ModelAResistances",
    "PlaneResistances",
    "compute_model_a_resistances",
    "ModelBResistances",
    "PlaneLadderQuantities",
    "compute_model_b_resistances",
    "slab_resistance",
    "cylinder_axial_resistance",
    "cylindrical_shell_resistance",
    "annulus_axial_resistance",
    "series",
    "parallel",
    "semi_infinite_spreading",
    "finite_slab_spreading",
    "truncated_cone_resistance",
    "via_cell_spreading",
]
