"""Spreading/constriction resistance primitives (planning extension).

When a small heat source (a hotspot or a via tip) feeds a much larger slab,
the 1-D slab formula underestimates the resistance near the source.  The
classic closed forms collected here are used by the TTSV planner to score
candidate insertion sites; they are not part of the paper's models.
"""

from __future__ import annotations

import math

from ..errors import ValidationError
from ..units import require_fraction, require_positive


def semi_infinite_spreading(radius: float, conductivity: float) -> float:
    """Constriction resistance of a circular isothermal source on a
    semi-infinite solid: R = 1/(4·k·a)."""
    require_positive("radius", radius)
    require_positive("conductivity", conductivity)
    return 1.0 / (4.0 * conductivity * radius)


def finite_slab_spreading(
    source_radius: float,
    slab_radius: float,
    thickness: float,
    conductivity: float,
) -> float:
    """Spreading resistance of a centred circular source on a finite
    cylindrical slab with an isothermal base.

    Uses the widely quoted dimensionless correlation of Lee et al.:
    ψ = (1 − ε)^1.5 · φ/2 with tanh-corrected finite thickness, where
    ε = a/b.  Accurate to a few percent for 0 < ε < 0.9, which covers via
    and hotspot geometries.
    """
    require_positive("source_radius", source_radius)
    require_positive("slab_radius", slab_radius)
    require_positive("thickness", thickness)
    require_positive("conductivity", conductivity)
    if source_radius >= slab_radius:
        raise ValidationError("source radius must be smaller than the slab radius")
    eps = source_radius / slab_radius
    tau = thickness / slab_radius
    lam = math.pi + 1.0 / (math.sqrt(math.pi) * eps)
    phi = (math.tanh(lam * tau) + lam / _biot_infinite()) / (
        1.0 + lam / _biot_infinite() * math.tanh(lam * tau)
    )
    psi = (1.0 - eps) ** 1.5 * phi / 2.0
    return psi / (conductivity * source_radius * math.sqrt(math.pi))


def _biot_infinite() -> float:
    """Effective Biot number for an isothermal base (Bi → ∞ limit)."""
    return 1e9


def truncated_cone_resistance(
    r_top: float, r_bottom: float, height: float, conductivity: float
) -> float:
    """Axial resistance of a truncated cone: R = h/(π·k·r_top·r_bottom).

    A standard 45°-spreading surrogate for heat fanning out below a via.
    """
    require_positive("r_top", r_top)
    require_positive("r_bottom", r_bottom)
    require_positive("height", height)
    require_positive("conductivity", conductivity)
    return height / (math.pi * conductivity * r_top * r_bottom)


def via_cell_spreading(
    via_radius: float,
    cell_area: float,
    substrate_thickness: float,
    conductivity: float,
) -> float:
    """Spreading term seen by one via at the centre of its unit cell.

    Wraps :func:`finite_slab_spreading` with the equal-area circular cell.
    """
    require_positive("cell_area", cell_area)
    cell_radius = math.sqrt(cell_area / math.pi)
    return finite_slab_spreading(
        via_radius, cell_radius, substrate_thickness, conductivity
    )


def coverage_corrected_resistance(
    base_resistance: float, coverage: float
) -> float:
    """Scale a per-cell resistance by via coverage (parallel cells).

    ``coverage`` is the fraction of the floorplan covered by via cells;
    the planner uses this to turn per-cell estimates into block estimates.
    """
    require_positive("base_resistance", base_resistance)
    coverage = require_fraction("coverage", coverage)
    if coverage == 0.0:
        raise ValidationError("coverage must be positive to carry any heat")
    return base_resistance * coverage
