"""Fitting coefficients of Model A.

The paper's k1 scales every *vertical* conductance and k2 every *lateral*
(liner) conductance; both absorb the mismatch between the three-path
abstraction and true 3-D spreading.  The case study additionally quotes a
coefficient c_{1,2} = 3.5 that we interpret as an effective bond-layer
conductance multiplier (see DESIGN.md, substitutions).

``FittingCoefficients(1, 1, 1)`` makes Model A coefficient-free, which is
exactly the resistance set Model B distributes (Section III: "obtained
similar to (7)-(15) without k1 and k2").
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..units import require_positive


@dataclass(frozen=True, slots=True)
class FittingCoefficients:
    """(k1, k2, c_bond) of Model A.

    Parameters
    ----------
    k1:
        Vertical-path conductance multiplier (paper: 1.3 for the block,
        1.6 for the case study).
    k2:
        Lateral liner-path conductance multiplier (paper: 0.55 / 0.8).
    c_bond:
        Effective bond-layer conductance multiplier (paper's c_{1,2};
        1.0 for the block experiments, 3.5 for the case study).
    """

    k1: float = 1.0
    k2: float = 1.0
    c_bond: float = 1.0

    def __post_init__(self) -> None:
        require_positive("k1", self.k1)
        require_positive("k2", self.k2)
        require_positive("c_bond", self.c_bond)

    @classmethod
    def unity(cls) -> "FittingCoefficients":
        """No fitting — used by Model B and the 1-D baseline."""
        return cls(1.0, 1.0, 1.0)

    @classmethod
    def paper_block(cls) -> "FittingCoefficients":
        """k1=1.3, k2=0.55 used for Figs. 4–7."""
        return cls(constants.PAPER_K1, constants.PAPER_K2, 1.0)

    @classmethod
    def paper_case_study(cls) -> "FittingCoefficients":
        """k1=1.6, k2=0.8, c=3.5 used for the DRAM-µP system (Fig. 8)."""
        return cls(constants.CASE_K1, constants.CASE_K2, constants.CASE_C_BOND)
