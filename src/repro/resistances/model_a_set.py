"""The Model A resistance set: Eqs. (7)–(16) generalised to N planes.

Per plane j the set holds the triple (bulk, metal, liner):

* ``bulk``  — vertical resistance of the surroundings of the via
  (R1 / R4 / R7 pattern), spanning ILD_j + Si_j + bond_{j-1};
* ``metal`` — vertical resistance of the via fill (R2 / R5 / R8 pattern);
* ``liner`` — lateral resistance of the dielectric liner (R3 / R6 / R9
  pattern, Eq. (9)'s shell integral, Eq. (22) for clusters).

plus ``rs``, the lumped first-plane substrate (Eq. (16)).

Span conventions (paper Fig. 2; see DESIGN.md §4):

* plane 1 via span: tD1 + l_ext (the via crosses ILD1 and dips l_ext into
  the first substrate);
* plane 1 < j < N via span: tD_j + tSi_j + tb_{j-1};
* plane N via span: tSi_N + tb_{N-1} — the via stops at the top of the last
  substrate (Eq. (14) has no tD term).

The fitting coefficients enter exactly as in the paper: k1 divides every
vertical resistance, k2 divides every lateral resistance; the c_bond
extension multiplies the bond conductivity inside the bulk terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError
from ..geometry import Stack3D, TSV, TSVCluster, as_cluster
from .fitting import FittingCoefficients


@dataclass(frozen=True, slots=True)
class PlaneResistances:
    """The (bulk, metal, liner) triple of one plane, K/W."""

    bulk: float
    metal: float
    liner: float


@dataclass(frozen=True, slots=True)
class ModelAResistances:
    """The complete Model A resistance set for an N-plane stack."""

    planes: tuple[PlaneResistances, ...]
    rs: float

    @property
    def n_planes(self) -> int:
        return len(self.planes)

    def as_paper_tuple(self) -> tuple[float, ...]:
        """(R1, R2, ..., R9, Rs) for a three-plane stack, in paper order.

        Raises
        ------
        GeometryError
            If the stack is not three planes (the paper's numbering only
            covers that case).
        """
        if self.n_planes != 3:
            raise GeometryError("paper numbering R1..R9 requires exactly 3 planes")
        p1, p2, p3 = self.planes
        return (
            p1.bulk, p1.metal, p1.liner,
            p2.bulk, p2.metal, p2.liner,
            p3.bulk, p3.metal, p3.liner,
            self.rs,
        )


def _liner_lateral(
    cluster: TSVCluster, span: float, k2: float
) -> float:
    """Eq. (9) for a single via, Eq. (22) for an n-via cluster.

    For n vias of radius r_n = r0/√n the per-via log ratio is
    ln((r_n + tL)/r_n) = ln((r0 + tL·√n)/r0) and the n liners act in
    parallel, giving Eq. (22).
    """
    tsv = cluster.base
    n = cluster.count
    k_liner = tsv.liner.thermal_conductivity
    ratio = (tsv.radius + tsv.liner_thickness * math.sqrt(n)) / tsv.radius
    return math.log(ratio) / (2.0 * n * math.pi * k2 * k_liner * span)


def _bulk_area(stack: Stack3D, cluster: TSVCluster, *, exact_area: bool) -> float:
    """A = A0 − π(r+tL)² (Eq. (7)); optionally the exact n-via footprint."""
    if exact_area:
        occupied = cluster.total_occupied_area
    else:
        occupied = cluster.base.occupied_area
    area = stack.footprint_area - occupied
    if area <= 0.0:
        raise GeometryError(
            "the via cluster occupies the entire footprint; nothing is left "
            "for the bulk path"
        )
    return area


def compute_model_a_resistances(
    stack: Stack3D,
    via: TSV | TSVCluster,
    fit: FittingCoefficients | None = None,
    *,
    exact_area: bool = False,
) -> ModelAResistances:
    """Evaluate Eqs. (7)–(16) (and (22) for clusters) on a stack.

    Parameters
    ----------
    stack:
        The N-plane stack (N ≥ 1).
    via:
        A single :class:`TSV` or an Eq.-(22) :class:`TSVCluster`.
    fit:
        Fitting coefficients; defaults to unity (coefficient-free set).
    exact_area:
        When True, subtract the cluster's true occupied area from the bulk
        area instead of the base via's (the paper keeps vertical
        resistances unchanged under the cluster transform; this switch
        exposes the refinement as an ablation).
    """
    fit = fit or FittingCoefficients.unity()
    cluster = as_cluster(via)
    tsv = cluster.base
    if tsv.extension >= stack.planes[0].substrate.thickness:
        raise GeometryError(
            f"via extension {tsv.extension} exceeds the first substrate "
            f"thickness {stack.planes[0].substrate.thickness}"
        )
    area = _bulk_area(stack, cluster, exact_area=exact_area)
    metal_area = math.pi * tsv.radius**2  # total metal area is n-invariant
    k_fill = tsv.fill.thermal_conductivity

    planes: list[PlaneResistances] = []
    for j, plane in stack.iter_planes():
        t_ild = plane.ild.thickness
        k_ild = plane.ild.conductivity
        t_si = plane.substrate.thickness
        k_si = plane.substrate.conductivity
        if j == 0:
            # plane 1: R1/R2/R3 pattern over tD + l_ext
            span = t_ild + tsv.extension
            bulk_sum = t_ild / k_ild + tsv.extension / k_si
        else:
            bond = stack.bond_below(j)
            k_bond = bond.material.thermal_conductivity * fit.c_bond
            if j < stack.n_planes - 1:
                # middle plane: R4/R5/R6 pattern over tD + tSi + tb
                span = t_ild + t_si + bond.thickness
            else:
                # last plane: R7 keeps the full bulk stack, but the via
                # stops at the substrate top: metal/liner span tSi + tb
                span = t_si + bond.thickness
            bulk_sum = t_ild / k_ild + t_si / k_si + bond.thickness / k_bond
        planes.append(
            PlaneResistances(
                bulk=bulk_sum / (fit.k1 * area),
                metal=span / (fit.k1 * k_fill * metal_area),
                liner=_liner_lateral(cluster, span, fit.k2),
            )
        )

    first_substrate = stack.planes[0].substrate
    rs = (first_substrate.thickness - tsv.extension) / (
        fit.k1 * first_substrate.conductivity * stack.footprint_area
    )
    return ModelAResistances(planes=tuple(planes), rs=rs)
