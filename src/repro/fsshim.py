"""Laggy-filesystem shim: deterministic delays on the rename/link seams.

The store and lease protocols leans on three POSIX guarantees —
``os.replace`` is atomic, ``os.link`` is atomic-exclusive, renames are
immediately visible.  On a local filesystem those operations complete in
microseconds, which makes their race windows (peek-then-steal in
:mod:`repro.scenarios.lease`, write-then-read in
:mod:`repro.scenarios.store`) almost impossible to hit in tests.  This
shim widens the windows: when installed it wraps ``os.replace``,
``os.rename`` and ``os.link`` with a *deterministic* pre-operation sleep
— a pure hash of ``(seed, op, basename)`` scaled into ``[0, delay_s]`` —
so a laggy NFS-ish filesystem can be simulated bit-reproducibly.  The
atomicity guarantees are untouched; only the latency changes, which is
exactly the regime where a renew can miss its TTL window, a steal can
race a release, and a reader can observe the pre-rename world.

Activation mirrors :mod:`repro.faults`: either call :func:`install`
directly (tests), or export ``REPRO_FSSHIM_DELAY_S`` (and optionally
``REPRO_FSSHIM_SEED``) and let :func:`activate_from_env` — called by the
CLI entry point and every fleet worker — pick it up, so
``scripts/chaos_soak.py`` can arm whole process trees through the
environment.  :func:`install` is idempotent and :func:`uninstall`
restores the real functions; the :func:`installed` context manager
scopes the shim for tests.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "ENV_DELAY_S",
    "ENV_SEED",
    "SHIMMED_OPS",
    "activate_from_env",
    "active",
    "install",
    "installed",
    "uninstall",
]

ENV_DELAY_S = "REPRO_FSSHIM_DELAY_S"
ENV_SEED = "REPRO_FSSHIM_SEED"

#: the os-module functions the shim wraps (every atomic-visibility seam
#: the store and lease protocols rely on)
SHIMMED_OPS = ("replace", "rename", "link")

_originals: dict[str, Callable[..., object]] = {}


def _delay_for(op: str, dst: object, delay_s: float, seed: int) -> float:
    """The deterministic sleep for one operation, in ``[0, delay_s]``.

    Hashing the *basename* (not the full path) keeps the draw stable
    across tmpdirs, so a seeded test or soak run sleeps identically no
    matter where its store lives.
    """
    name = os.path.basename(os.fspath(dst))
    digest = hashlib.blake2b(
        f"{seed}|{op}|{name}".encode(), digest_size=4
    ).digest()
    return delay_s * (int.from_bytes(digest, "big") / float(1 << 32))


def active() -> bool:
    return bool(_originals)


def install(delay_s: float, *, seed: int = 0) -> None:
    """Wrap the shimmed os functions with deterministic pre-op sleeps.

    Idempotent: a second install leaves the first one in place (so a
    worker that inherits the env and calls :func:`activate_from_env`
    after a test already installed the shim cannot double-wrap).
    """
    if _originals:
        return
    if delay_s < 0:
        raise ValueError(f"fsshim delay_s must be >= 0, got {delay_s}")
    for op in SHIMMED_OPS:
        original = getattr(os, op)
        _originals[op] = original

        def shimmed(src, dst, *args, __op=op, __orig=original, **kwargs):
            time.sleep(_delay_for(__op, dst, delay_s, seed))
            return __orig(src, dst, *args, **kwargs)

        setattr(os, op, shimmed)


def uninstall() -> None:
    """Restore the real os functions (no-op when not installed)."""
    while _originals:
        op, original = _originals.popitem()
        setattr(os, op, original)


@contextmanager
def installed(delay_s: float, *, seed: int = 0) -> Iterator[None]:
    """Scope the shim to a with-block (test helper)."""
    install(delay_s, seed=seed)
    try:
        yield
    finally:
        uninstall()


def activate_from_env() -> bool:
    """Install the shim when ``REPRO_FSSHIM_DELAY_S`` is exported.

    Returns whether the shim is active afterwards.  Invalid values are
    ignored rather than raised — a stray variable must not take down a
    production run.
    """
    raw = os.environ.get(ENV_DELAY_S)
    if raw is None:
        return active()
    try:
        delay_s = float(raw)
        seed = int(os.environ.get(ENV_SEED, "0"))
    except ValueError:
        return active()
    if delay_s > 0:
        install(delay_s, seed=seed)
    return active()
