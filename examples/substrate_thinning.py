"""Wafer-thinning study: is thinner always cooler?  (the Fig. 6 scenario)

3-D integration thins upper wafers aggressively for short TSVs — but the
paper shows thinning *past* a point heats the stack, because a thin
substrate cannot spread heat laterally into the via.  This example finds
the optimum thickness with Model A (cheap enough to scan finely), verifies
it against the FVM reference, and shows the 1-D model recommending the
wrong direction.

Run:  python examples/substrate_thinning.py
"""

import numpy as np

from repro import Model1D, ModelA, PowerSpec, paper_stack, paper_tsv
from repro.analysis import ascii_plot, crossover_points
from repro.fem import FEMReference
from repro.units import um


def main() -> None:
    via = paper_tsv(radius=um(8), liner_thickness=um(1))
    power = PowerSpec()

    def stack_at(t_si_um: float):
        return paper_stack(t_si_upper=um(t_si_um), t_ild=um(7), t_bond=um(1))

    # fine scan with the analytical model (milliseconds per point)
    fine = list(np.linspace(5.0, 80.0, 31))
    a_series = [ModelA().solve(stack_at(t), via, power).max_rise for t in fine]
    d_series = [Model1D().solve(stack_at(t), via, power).max_rise for t in fine]

    # coarse verification with the detailed solver
    coarse = [5.0, 10.0, 20.0, 45.0, 80.0]
    fem_series = [
        FEMReference("medium").solve(stack_at(t), via, power).max_rise
        for t in coarse
    ]

    print(ascii_plot(
        fine,
        {"model_a": a_series, "model_1d": d_series},
        x_label="substrate thickness tSi2,3 [um]",
        y_label="max ΔT [°C]",
    ))
    print()

    best = fine[int(np.argmin(a_series))]
    minima = crossover_points(coarse, fem_series)
    print(f"Model A optimum substrate thickness : {best:.0f} um")
    if minima:
        print(f"FEM confirms a minimum near         : {minima[0]:.0f} um")
    print(f"paper's reported sweet spot         : ≈ 20 um")
    print()
    slope_1d = d_series[-1] - d_series[0]
    print(
        "the 1-D model is monotone "
        f"({'rising' if slope_1d > 0 else 'falling'} by {abs(slope_1d):.1f} °C "
        "over the range) — it would always recommend maximal thinning."
    )


if __name__ == "__main__":
    main()
