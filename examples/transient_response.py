"""Transient extension: how fast does a TTSV tame a power spike?

The paper's models are steady state.  The library's RC extension attaches
thermal capacitances (ρ·cp·V per node) to Model A's network and integrates
the step response, so a user can ask how long the top plane takes to heat
up after a workload step — and how the TTSV changes the thermal time
constant.

Run:  python examples/transient_response.py
"""

from repro import ModelA, PowerSpec, paper_stack, paper_tsv
from repro.core.model_a import build_model_a_circuit, bulk_node
from repro.network import step_response, time_constants
from repro.units import um


def transient_circuit(stack, via, power, *, with_via: bool):
    """Model A's network with node capacitances from the plane volumes."""
    model = ModelA()
    resistances = model.resistances(stack, via if with_via else via.with_radius(1e-9))
    heats = tuple(power.plane_heat(stack, j) for j in range(stack.n_planes))
    circuit = build_model_a_circuit(resistances, heats)
    for j, plane in stack.iter_planes():
        # lump each plane's substrate+ILD heat capacity on its bulk node
        volume = stack.footprint_area * plane.thickness
        c = plane.substrate.material.volumetric_heat_capacity * volume
        circuit.add_capacitor(bulk_node(j), c)
    return circuit


def main() -> None:
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    via = paper_tsv(radius=um(10), liner_thickness=um(1))
    power = PowerSpec()

    for label, with_via in (("with TTSV (r = 10 um)", True), ("via-less", False)):
        circuit = transient_circuit(stack, via, power, with_via=with_via)
        taus = time_constants(circuit, n=1)
        result = step_response(circuit, t_end=8 * taus[0], n_steps=400)
        top = result.trace(bulk_node(stack.n_planes - 1))
        final = top[-1]
        # time to reach 90 % of the steady rise
        idx = next(i for i, t in enumerate(top) if t >= 0.9 * final)
        print(f"{label:>22}: steady ΔT = {final:6.2f} °C, "
              f"slowest τ = {taus[0] * 1e6:7.1f} us, "
              f"90 % settle = {result.times[idx] * 1e6:7.1f} us")

    print()
    print("the via lowers both the steady-state rise and the settling time —")
    print("it is a conductance in parallel with the slow bulk path.")


if __name__ == "__main__":
    main()
