"""Quickstart: analyse one thermal TSV in a three-plane 3-D IC.

Builds the paper's standard 100 µm × 100 µm block, solves it with all
three analytical models plus the finite-volume reference, and shows what
the library reports: per-plane temperature rises, the hottest node, the
dominant heat paths and the per-model error against the detailed solve.

Run:  python examples/quickstart.py
"""

from repro import Model1D, ModelA, ModelB, PowerSpec, paper_stack, paper_tsv, perf
from repro.analysis import format_kv_block, format_table
from repro.core.model_a import build_model_a_circuit
from repro.fem import FEMReference
from repro.network import dominant_paths
from repro.units import um


def main() -> None:
    # 1. describe the structure: three planes, 45 um upper substrates,
    #    7 um ILDs, 1 um polyimide bonds (the paper's Fig. 5 block)
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    via = paper_tsv(radius=um(5), liner_thickness=um(1))
    power = PowerSpec()  # 700 W/mm^3 devices + 70 W/mm^3 interconnect Joule heat

    print(format_kv_block(
        "Structure",
        {
            "planes": stack.n_planes,
            "footprint": f"{stack.footprint_side * 1e6:.0f} um square",
            "via radius": f"{via.radius * 1e6:.1f} um",
            "liner": f"{via.liner_thickness * 1e6:.1f} um SiO2",
            "total heat": f"{power.total_heat(stack) * 1e3:.2f} mW",
        },
    ))
    print()

    # 2. solve with every model
    models = [ModelA(), ModelB(100), Model1D(), FEMReference("medium")]
    results = {m.name: m.solve(stack, via, power) for m in models}
    rows = [["model", "max ΔT [°C]", "abs max T [°C]", "unknowns", "time [ms]"]]
    for name, r in results.items():
        rows.append([name, r.max_rise, r.max_temperature, r.n_unknowns,
                     r.solve_time * 1e3])
    print(format_table(rows))
    print()

    # 3. error against the detailed reference
    fem = results["fem"].max_rise
    for name in ("model_a", "model_b(100)", "model_1d"):
        err = (results[name].max_rise - fem) / fem * 100.0
        print(f"{name:>13}: {err:+.1f} % vs FEM")
    print()

    # 4. inspect the Model A network: where does the heat actually go?
    resistances = ModelA().resistances(stack, via)
    heats = tuple(power.plane_heat(stack, j) for j in range(stack.n_planes))
    circuit = build_model_a_circuit(resistances, heats)
    print("dominant heat paths from the top plane (Fig. 1(b)'s paths):")
    for path, series_r in dominant_paths(circuit, "bulk3", limit=3):
        chain = " -> ".join(str(node) for node in path)
        print(f"  {chain}   (series resistance {series_r:.0f} K/W)")
    print()

    # 5. performance: repeated solves hit the assembly/factor/result caches
    #    (sweeps add process-parallelism via `python -m repro fig7 --jobs 4`,
    #    and `python -m repro bench` writes the BENCH_<date>.json regression
    #    report — see the ROADMAP's Performance section)
    results["fem"]  # the solve above primed the caches; solve once more:
    FEMReference("medium").solve(stack, via, power)
    cache_stats = perf.stats()["caches"]
    print("cache hit rates after a repeated FEM solve:")
    for cache_name in ("assembly_cache", "factor_cache"):
        c = cache_stats[cache_name]
        print(f"  {cache_name}: {c['hits']} hits / {c['misses']} misses")


if __name__ == "__main__":
    main()
