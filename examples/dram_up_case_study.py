"""The paper's 3-D DRAM-µP case study, end to end (Section IV-E).

A 10 mm × 10 mm processor with two stacked DRAM planes, cooled through
~17,700 TTSVs at 0.5 % area density.  Reproduces the paper's four-model
comparison, re-runs the calibration workflow against our own FEM, and
reports the 1-D model's overestimation factor — the reason the paper warns
against 1-D-driven TTSV planning.

Run:  python examples/dram_up_case_study.py
"""

from repro.analysis import format_kv_block, format_table
from repro.experiments import case_study


def main() -> None:
    exp = case_study.run(fem_resolution="medium", recalibrate=True)
    system = exp.report.system

    print(format_kv_block(
        "System (Fig. 8)",
        {
            "footprint": "10 mm x 10 mm",
            "planes": "uP (70 W) + 2 x DRAM (7 W)",
            "substrates": "300 um each",
            "TTSVs": f"{system.n_vias} vias, r = 30 um, 0.5 % density",
            "unit cell": f"{system.cell_area * 1e12:.0f} um^2 per via",
        },
    ))
    print()
    print(format_table(exp.rows(), float_format="{:.2f}"))
    print()
    print("paper's numbers: A = 12.8, B(1000) = 13.9, FEM = 12, 1-D = 20 °C")
    factor = exp.report.overestimation_factor()
    print(f"1-D overestimation vs FEM: {factor:.2f}x  (paper: 20/12 ≈ 1.67x)")
    print()
    if exp.recalibrated is not None:
        print(
            "recalibrated coefficients against our FEM: "
            f"k1 = {exp.recalibrated.k1:.2f}, k2 = {exp.recalibrated.k2:.2f} "
            f"-> Model A reads {exp.recalibrated_rise:.2f} °C "
            f"(FEM {exp.report.rises()['fem']:.2f} °C)"
        )


if __name__ == "__main__":
    main()
