"""Liner-thickness design study (the Fig. 5 scenario, as a user would run it).

A process engineer can trade liner thickness (stress/reliability) against
thermal performance.  This example sweeps the liner from 0.5 to 3 µm,
prints the ΔT table and ASCII figure, quantifies how badly the traditional
1-D model misses the trend, and exports the raw series to CSV.

Run:  python examples/liner_design.py
"""

from repro import Model1D, ModelA, ModelB, PowerSpec, paper_stack, paper_tsv, sweep
from repro.analysis import ascii_plot, export_series_csv, series_errors
from repro.fem import FEMReference
from repro.units import um


def main() -> None:
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    power = PowerSpec()
    liners_um = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]

    def configure(liner_um: float):
        return stack, paper_tsv(radius=um(5), liner_thickness=um(liner_um)), power

    models = [ModelA(), ModelB(100), Model1D(), FEMReference("medium")]
    result = sweep("liner [um]", liners_um, models, configure)

    series = {name: result.series(name) for name in result.model_names}
    print(ascii_plot(liners_um, series, x_label="liner thickness [um]",
                     y_label="max ΔT [°C]"))
    print()

    fem = series["fem"]
    spread = (max(fem) - min(fem)) / min(fem) * 100.0
    print(f"FEM ΔT spread across the liner range: {spread:.1f} % "
          f"({max(fem) - min(fem):.1f} °C)  [paper: up to 11 %, ≈ 4 °C]")
    for name in ("model_a", "model_b(100)", "model_1d"):
        err = series_errors(series[name], fem)
        print(f"{name:>13}: avg {err.avg_error * 100.0:.1f} % / "
              f"max {err.max_error * 100.0:.1f} % vs FEM")

    path = export_series_csv(
        "examples/output/liner_design.csv", "liner_um", liners_um, series
    )
    print(f"\nraw series written to {path}")


if __name__ == "__main__":
    main()
