"""Cluster design: one fat via or many thin ones?  (the Fig. 7 scenario)

Keeping the copper budget constant (Eq. (22)), splitting one via into n
members enlarges the liner surface and cools the stack — with diminishing
returns.  This example finds the smallest n that achieves a target ΔT,
prints the whole trade-off curve, and contrasts the cluster against simply
buying a single bigger via.

Run:  python examples/cluster_design.py
"""

from repro import ModelA, PowerSpec, TSVCluster, paper_stack, paper_tsv
from repro.analysis import format_table
from repro.fem import FEMReference
from repro.units import um


def main() -> None:
    stack = paper_stack(t_si_upper=um(20), t_ild=um(4), t_bond=um(1))
    base = paper_tsv(radius=um(10), liner_thickness=um(1))
    power = PowerSpec()
    model = ModelA()
    target = 15.0  # degC rise budget for the top plane

    rows = [["n vias", "member r [um]", "ΔT (A) [°C]", "ΔT (FEM) [°C]", "liner area x"]]
    chosen = None
    for n in (1, 2, 4, 9, 16, 25):
        cluster = TSVCluster(base, n)
        rise_a = model.solve(stack, cluster, power).max_rise
        rise_fem = FEMReference("medium").solve(stack, cluster, power).max_rise
        rows.append([
            n,
            cluster.member_radius * 1e6,
            rise_a,
            rise_fem,
            cluster.total_lateral_perimeter / (2 * 3.141592653589793 * base.radius),
        ])
        if chosen is None and rise_a <= target:
            chosen = n
    print(format_table(rows))
    print()
    if chosen:
        print(f"smallest cluster meeting ΔT ≤ {target:.0f} °C: n = {chosen}")
    else:
        print(f"no cluster size up to 25 meets ΔT ≤ {target:.0f} °C")

    # compare with spending the same *outer footprint* on one big via
    big_r = TSVCluster(base, chosen or 16).total_occupied_area / 3.141592653589793
    big = base.with_radius(big_r**0.5 - base.liner_thickness)
    rise_big = model.solve(stack, big, power).max_rise
    print(
        f"a single via with the same outer footprint reaches {rise_big:.1f} °C — "
        "more copper, similar cooling: the cluster wins on metal budget."
    )


if __name__ == "__main__":
    main()
