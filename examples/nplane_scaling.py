"""How do TTSVs scale with stack height?  (the paper's N-plane extension)

Section II notes that "Model A can be extended to any number of planes":
first-plane resistances for plane 1, last-plane for plane N, the middle
pattern for the rest.  This example exercises that extension from 2 to 8
planes, with and without a TTSV, and shows the via's benefit *growing*
with stack height — exactly why TTSVs matter for aggressive 3-D stacking.

Run:  python examples/nplane_scaling.py
"""

from repro import ModelA, ModelB, PowerSpec, paper_stack, paper_tsv
from repro.analysis import format_table
from repro.units import um


def main() -> None:
    power = PowerSpec()
    via = paper_tsv(radius=um(10), liner_thickness=um(1))
    tiny = via.with_radius(um(0.05))  # effectively via-less reference

    rows = [["planes", "ΔT no via [°C]", "ΔT with TTSV [°C]", "reduction %",
             "B(50) check [°C]"]]
    for n in (2, 3, 4, 5, 6, 8):
        stack = paper_stack(
            n_planes=n, t_si_upper=um(45), t_ild=um(7), t_bond=um(1)
        )
        bare = ModelA().solve(stack, tiny, power).max_rise
        cooled = ModelA().solve(stack, via, power).max_rise
        check = ModelB(50).solve(stack, via, power).max_rise
        rows.append([n, bare, cooled, (bare - cooled) / bare * 100.0, check])
    print(format_table(rows))
    print()
    print("the absolute ΔT grows superlinearly with the plane count (each")
    print("plane adds heat AND resistance), and so does the TTSV's value —")
    print("the via couples every upper plane to the sink.")


if __name__ == "__main__":
    main()
