"""TTSV planning on a floorplan with a hotspot (the planning extension).

The paper's conclusion: using a 1-D thermal model in a TTSV
insertion/planning flow "can result in excessive usage of TTSVs (a
critical resource in 3-D ICs)".  This example quantifies that claim: the
same greedy planner is run twice on a hotspot floorplan — once scoring
cells with Model A, once with the 1-D baseline — and the via counts are
compared.

Run:  python examples/tsv_planning.py
"""

import numpy as np

from repro import Model1D, paper_stack, paper_tsv
from repro.planning import GreedyPlanner, hotspot_power_map
from repro.units import mm, um


def ascii_via_map(counts: np.ndarray) -> str:
    """Render the per-cell via counts as a small character map."""
    return "\n".join(
        "  " + " ".join(f"{int(v):2d}" if v else " ." for v in row)
        for row in counts
    )


def main() -> None:
    # a 2 mm x 2 mm three-plane block with a hot corner on the top plane
    stack = paper_stack(
        t_si_upper=um(45), t_ild=um(7), t_bond=um(1),
        footprint_area=mm(2) * mm(2),
    )
    via = paper_tsv(radius=um(10), liner_thickness=um(1))
    power_map = hotspot_power_map(
        (2.0, 1.0, 1.0),  # watts per plane
        stack.footprint_side,
        grid=6,
        hotspots=[(0.8, 0.8, 2.0, 0.08)],  # +2 W blob near a corner
    )
    target = 5.0  # degC

    for label, estimator in (("Model A", None), ("1-D baseline", Model1D())):
        planner = (
            GreedyPlanner(stack=stack, via=via)
            if estimator is None
            else GreedyPlanner(stack=stack, via=via, estimator=estimator)
        )
        result = planner.plan(power_map, target_rise=target, max_total_vias=300)
        print(f"--- planning with {label} ---")
        print(result.summary())
        print("via map (vias per floorplan cell):")
        print(ascii_via_map(result.via_counts))
        print()

    print(
        "the 1-D estimator cannot see the lateral liner path, judges each "
        "via less effective than it is, and therefore spends more vias for "
        "the same target — the paper's cost argument."
    )


if __name__ == "__main__":
    main()
